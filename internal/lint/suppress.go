package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// suppressionIndex records, per file and line, which analyzers are
// ignored there. A //lint:ignore comment on line L covers findings on
// line L (trailing comment) and line L+1 (comment above the offending
// statement).
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] {
			return true
		}
	}
	return false
}

// directives recognised besides //lint:ignore. Anything else spelled
// //lint:... is reported as malformed so typos fail loudly instead of
// silently not suppressing.
var knownDirectives = map[string]bool{
	"hotpath":    true,
	"noescape":   true, // perfgate escape-analysis contract; see cmd/perfgate
	"phase":      true, // solver phase contracts; see phaseorder.go
	"coordspace": true, // frame-conversion marker; see coordspace.go
	"noalias":    true, // slice-parameter aliasing contract; see aliasguard.go
	"shape":      true, // length-relation contract; see shapecheck.go
	"precision":  true, // storage/accumulation precision contract; see precguard.go
	"stage":      true, // pipeline stage contract; see stagedag.go
}

// WaiverUse records one //lint:ignore occurrence, so the baseline can
// check that every in-source waiver is registered with a reason.
type WaiverUse struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// phaseNameRe constrains phase names in //lint:phase directives: short
// lowercase kebab-case identifiers ("assembled", "bc-applied").
var phaseNameRe = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// suppressions scans a package's comments for //lint: directives. It
// returns the ignore index, the waiver uses for the baseline check, and
// diagnostics (under the "lint" pseudo-analyzer) for malformed
// directives: a missing reason, an unknown analyzer name, an unknown
// directive verb, or bad //lint:phase / //lint:coordspace syntax.
func suppressions(pkg *Package, known map[string]bool) (suppressionIndex, []WaiverUse, []Finding) {
	idx := make(suppressionIndex)
	var waivers []WaiverUse
	var diags []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, arg, _ := strings.Cut(rest, " ")
				switch verb {
				case "ignore":
					name, reason, _ := strings.Cut(strings.TrimSpace(arg), " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "malformed directive: want //lint:ignore <analyzer> <reason>"})
						continue
					}
					if !known[name] {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "//lint:ignore names unknown analyzer " + strconvQuote(name)})
						continue
					}
					waivers = append(waivers, WaiverUse{
						Pos: pos, Analyzer: name, Reason: strings.TrimSpace(reason),
					})
					if idx[pos.Filename] == nil {
						idx[pos.Filename] = make(map[int]map[string]bool)
					}
					if idx[pos.Filename][pos.Line] == nil {
						idx[pos.Filename][pos.Line] = make(map[string]bool)
					}
					idx[pos.Filename][pos.Line][name] = true
				case "phase":
					diags = append(diags, checkPhaseSyntax(pos, arg)...)
				case "coordspace":
					if strings.TrimSpace(arg) != "conversion" {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "malformed directive: want //lint:coordspace conversion"})
					}
				case "noalias":
					diags = append(diags, checkNoaliasSyntax(pos, arg)...)
				case "shape":
					diags = append(diags, checkShapeSyntax(pos, arg)...)
				case "precision":
					diags = append(diags, checkPrecisionSyntax(pos, arg)...)
				case "stage":
					diags = append(diags, checkStageSyntax(pos, arg)...)
				default:
					if !knownDirectives[verb] {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "unknown directive //lint:" + verb})
					}
				}
			}
		}
	}
	return idx, waivers, diags
}

// checkPhaseSyntax validates the argument list of a //lint:phase
// directive: space-separated key=value fields with keys from
// requires/provides/forbids and comma-separated kebab-case phase names.
func checkPhaseSyntax(pos token.Position, arg string) []Finding {
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return []Finding{{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: want //lint:phase requires=...|provides=...|forbids=..."}}
	}
	var diags []Finding
	for _, field := range fields {
		key, val, hasEq := strings.Cut(field, "=")
		switch {
		case !hasEq || (key != "requires" && key != "provides" && key != "forbids"):
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:phase field " + strconvQuote(field) +
					": want requires=, provides=, or forbids="})
			continue
		case splitPhases(val) == nil:
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:phase " + key + "= lists no phases"})
			continue
		}
		for _, p := range splitPhases(val) {
			if !phaseNameRe.MatchString(p) {
				diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
					Msg: "//lint:phase name " + strconvQuote(p) + " is not lowercase kebab-case"})
			}
		}
	}
	return diags
}

// checkNoaliasSyntax validates a //lint:noalias argument list:
// comma-separated identifiers, at least two. (Whether the names match
// slice parameters is aliasguard's semantic check.)
func checkNoaliasSyntax(pos token.Position, arg string) []Finding {
	var diags []Finding
	names := strings.Split(strings.TrimSpace(arg), ",")
	count := 0
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		count++
		if !identLike(n) {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:noalias name " + strconvQuote(n) + " is not an identifier"})
		}
	}
	if count < 2 {
		diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: want //lint:noalias <param>,<param>[,...]"})
	}
	return diags
}

// checkShapeSyntax validates a //lint:shape argument: either the single
// word "validator" or space-separated len/value relations joined by ==.
// (Whether the names match fields or parameters is shapecheck's
// semantic check.)
func checkShapeSyntax(pos token.Position, arg string) []Finding {
	arg = strings.TrimSpace(arg)
	if arg == "validator" {
		return nil
	}
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return []Finding{{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: want //lint:shape validator | <relation>..."}}
	}
	var diags []Finding
	for _, field := range fields {
		if _, ok := parseShapeRel(field); !ok {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:shape relation " + strconvQuote(field) +
					" does not parse: want len(A)==len(B), len(A)==N+1, or len(A)==A[N] forms"})
		}
	}
	return diags
}

// checkPrecisionSyntax validates a //lint:precision argument list:
// an optional "convert" marker and/or storage=/accum= fields with
// comma-separated identifiers, at least one token in total. (Whether
// the names match fields, parameters, or "result", and whether their
// types fit the class, is precguard's semantic check.)
func checkPrecisionSyntax(pos token.Position, arg string) []Finding {
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return []Finding{{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: want //lint:precision [convert] [storage=<name>,...] [accum=<name>,...]"}}
	}
	var diags []Finding
	for _, field := range fields {
		if field == "convert" {
			continue
		}
		key, val, hasEq := strings.Cut(field, "=")
		if !hasEq || (key != "storage" && key != "accum") {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:precision field " + strconvQuote(field) +
					": want convert, storage=, or accum="})
			continue
		}
		count := 0
		for _, n := range strings.Split(val, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			count++
			if !identLike(n) {
				diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
					Msg: "//lint:precision name " + strconvQuote(n) + " is not an identifier"})
			}
		}
		if count == 0 {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:precision " + key + "= lists no names"})
		}
	}
	return diags
}

// checkStageSyntax validates a //lint:stage argument list: a mandatory
// name=<kebab> field, optional deps=/inputs=/outputs=/key= comma lists
// and an optional bare "pure" marker. (Whether the names match state
// fields, earlier stages, or Config fields is stagedag's semantic
// check.)
func checkStageSyntax(pos token.Position, arg string) []Finding {
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return []Finding{{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: want //lint:stage name=<stage> [deps=...] [inputs=...] [outputs=...] [key=...] [pure]"}}
	}
	var diags []Finding
	hasName := false
	for _, field := range fields {
		if field == "pure" {
			continue
		}
		key, val, hasEq := strings.Cut(field, "=")
		if !hasEq || (key != "name" && key != "deps" && key != "inputs" && key != "outputs" && key != "key") {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:stage field " + strconvQuote(field) +
					": want name=, deps=, inputs=, outputs=, key=, or pure"})
			continue
		}
		list := splitPhases(val)
		if len(list) == 0 {
			diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
				Msg: "//lint:stage " + key + "= lists no names"})
			continue
		}
		switch key {
		case "name":
			hasName = true
			if len(list) != 1 || !phaseNameRe.MatchString(list[0]) {
				diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
					Msg: "//lint:stage name " + strconvQuote(val) + " is not one lowercase kebab-case name"})
			}
		case "deps":
			for _, d := range list {
				if !phaseNameRe.MatchString(d) {
					diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
						Msg: "//lint:stage dep " + strconvQuote(d) + " is not lowercase kebab-case"})
				}
			}
		default: // inputs, outputs, key
			for _, nm := range list {
				if !identLike(nm) {
					diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
						Msg: "//lint:stage " + key + " name " + strconvQuote(nm) + " is not an identifier"})
				}
			}
		}
	}
	if !hasName {
		diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
			Msg: "malformed directive: //lint:stage requires name=<stage>"})
	}
	return diags
}

func strconvQuote(s string) string { return `"` + s + `"` }
