package lint

import (
	"go/token"
	"strings"
)

// suppressionIndex records, per file and line, which analyzers are
// ignored there. A //lint:ignore comment on line L covers findings on
// line L (trailing comment) and line L+1 (comment above the offending
// statement).
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] {
			return true
		}
	}
	return false
}

// directives recognised besides //lint:ignore. Anything else spelled
// //lint:... is reported as malformed so typos fail loudly instead of
// silently not suppressing.
var knownDirectives = map[string]bool{
	"hotpath": true,
}

// suppressions scans a package's comments for //lint: directives. It
// returns the ignore index plus diagnostics (under the "lint" pseudo-
// analyzer) for malformed directives: a missing reason, an unknown
// analyzer name, or an unknown directive verb.
func suppressions(pkg *Package, known map[string]bool) (suppressionIndex, []Finding) {
	idx := make(suppressionIndex)
	var diags []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, arg, _ := strings.Cut(rest, " ")
				switch verb {
				case "ignore":
					name, reason, _ := strings.Cut(strings.TrimSpace(arg), " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "malformed directive: want //lint:ignore <analyzer> <reason>"})
						continue
					}
					if !known[name] {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "//lint:ignore names unknown analyzer " + strconvQuote(name)})
						continue
					}
					if idx[pos.Filename] == nil {
						idx[pos.Filename] = make(map[int]map[string]bool)
					}
					if idx[pos.Filename][pos.Line] == nil {
						idx[pos.Filename][pos.Line] = make(map[string]bool)
					}
					idx[pos.Filename][pos.Line][name] = true
				default:
					if !knownDirectives[verb] {
						diags = append(diags, Finding{Pos: pos, Analyzer: "lint",
							Msg: "unknown directive //lint:" + verb})
					}
				}
			}
		}
	}
	return idx, diags
}

func strconvQuote(s string) string { return `"` + s + `"` }
