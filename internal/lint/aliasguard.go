package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// aliasguard enforces //lint:noalias contracts on kernel slice
// parameters. A kernel whose correctness depends on its slice arguments
// not sharing a backing array (CSR MulVec writing y while reading x,
// the EDT row transform, the GMRES cycle) declares the contract in its
// doc comment:
//
//	//lint:noalias x,y
//
// and aliasguard verifies every call site by backing-array provenance
// (provenance.go): if two contract arguments may derive from the same
// root — the same variable, field chain, or allocation site — the call
// is reported. Distinct named roots are assumed distinct, so correct
// call sites stay clean without waivers; the y = A·y corruption the
// contract targets always shows the same root on both sides.
//
// The contract propagates: a function that forwards two of its *own*
// slice parameters into a callee's noalias pair inherits the proof
// obligation and must declare //lint:noalias on them itself, so the
// requirement surfaces in the API documentation of every wrapper
// (function literals cannot carry doc comments and are exempt — their
// parameters are assumed distinct, like any other distinct roots).
type aliasguard struct{}

func (aliasguard) Name() string { return "aliasguard" }

func (aliasguard) Doc() string {
	return "//lint:noalias slice-parameter contracts verified at every call site by backing-array provenance"
}

// parseNoaliasDirective extracts the parameter names of a
// //lint:noalias directive; syntax diagnostics live in suppressions().
func parseNoaliasDirective(doc *ast.CommentGroup) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:noalias")
		if !ok {
			continue
		}
		var names []string
		for _, n := range strings.Split(strings.TrimSpace(rest), ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names, true
	}
	return nil, false
}

func (aliasguard) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		// Semantic validation of contracts declared in this package.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, checkNoaliasDecl(pkg, fd)...)
		}
		for _, sc := range funcScopes(file) {
			out = append(out, checkNoaliasCalls(pkg, sc)...)
		}
	}
	return out
}

// checkNoaliasDecl validates a declared contract against the
// function's actual parameter list.
func checkNoaliasDecl(pkg *Package, fd *ast.FuncDecl) []Finding {
	names, ok := parseNoaliasDirective(fd.Doc)
	if !ok {
		return nil
	}
	var out []Finding
	pos := pkg.Fset.Position(fd.Name.Pos())
	if len(names) < 2 {
		out = append(out, Finding{Pos: pos, Analyzer: "aliasguard",
			Msg: "//lint:noalias on " + fd.Name.Name + " needs at least two parameter names"})
	}
	params := paramIndex(pkg, fd)
	for _, n := range names {
		obj, ok := params[n]
		if !ok {
			out = append(out, Finding{Pos: pos, Analyzer: "aliasguard",
				Msg: "//lint:noalias names " + strconvQuote(n) + " which is not a parameter of " + fd.Name.Name})
			continue
		}
		if !isSliceType(obj.Type()) {
			out = append(out, Finding{Pos: pos, Analyzer: "aliasguard",
				Msg: "//lint:noalias names " + strconvQuote(n) + " which is not slice-typed on " + fd.Name.Name})
		}
	}
	return out
}

// paramIndex maps a declaration's parameter names to their objects.
func paramIndex(pkg *Package, fd *ast.FuncDecl) map[string]*types.Var {
	out := make(map[string]*types.Var)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
				out[name.Name] = obj
			}
		}
	}
	return out
}

// noaliasContract resolves a call's //lint:noalias contract to argument
// positions: the callee's declared names mapped through its flattened
// parameter list.
func noaliasContract(pkg *Package, call *ast.CallExpr) (fn *types.Func, argIdx []int, names []string) {
	fn = calleeFunc(pkg, call)
	if fn == nil || pkg.Mod == nil {
		return nil, nil, nil
	}
	decl := pkg.Mod.FuncDecl(fn)
	if decl == nil {
		return nil, nil, nil
	}
	declared, ok := parseNoaliasDirective(decl.Doc)
	if !ok || len(declared) < 2 {
		return nil, nil, nil
	}
	flat := flatParamNames(decl)
	for _, n := range declared {
		for i, pn := range flat {
			if pn == n {
				if i < len(call.Args) {
					argIdx = append(argIdx, i)
					names = append(names, n)
				}
				break
			}
		}
	}
	if len(argIdx) < 2 {
		return nil, nil, nil
	}
	return fn, argIdx, names
}

func flatParamNames(decl *ast.FuncDecl) []string {
	var out []string
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}

// checkNoaliasCalls verifies every contract call site within one
// function scope.
func checkNoaliasCalls(pkg *Package, sc funcScope) []Finding {
	// Collect the contract calls first; the value-flow build is lazy so
	// scopes without contract calls stay cheap.
	var calls []*ast.CallExpr
	inspectShallow(sc.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, _, _ := noaliasContract(pkg, call); fn != nil {
				calls = append(calls, call)
			}
		}
		return true
	})
	if len(calls) == 0 {
		return nil
	}
	vf := buildValueFlow(pkg, sc)
	res := &provResolver{pkg: pkg, vf: vf,
		summary: func(fn *types.Func) *provSummary { return pkg.Mod.SliceSummary(pkg, fn) }}

	ownParams := make(map[*types.Var]string)
	var ownContract []string
	if sc.decl != nil {
		for name, obj := range paramIndex(pkg, sc.decl) {
			ownParams[obj] = name
		}
		ownContract, _ = parseNoaliasDirective(sc.decl.Doc)
	}

	var out []Finding
	for _, call := range calls {
		fn, argIdx, names := noaliasContract(pkg, call)
		provs := make([]provSet, len(argIdx))
		for i, ai := range argIdx {
			provs[i] = res.sliceProv(call.Args[ai], 0)
		}
		for i := 0; i < len(argIdx); i++ {
			for j := i + 1; j < len(argIdx); j++ {
				if shared := sharedRoots(provs[i], provs[j]); len(shared) > 0 {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "aliasguard",
						Msg: fn.Name() + " requires non-aliasing arguments " + strconvQuote(names[i]) +
							" and " + strconvQuote(names[j]) + " (//lint:noalias) but both may derive from " +
							shared[0].String(),
					})
					continue
				}
				out = append(out, checkPropagation(pkg, sc, call, fn,
					provs[i], provs[j], names[i], names[j], ownParams, ownContract)...)
			}
		}
	}
	return out
}

// checkPropagation reports a forwarding scope that passes two of its
// own parameters into a noalias pair without carrying the contract.
func checkPropagation(pkg *Package, sc funcScope, call *ast.CallExpr, fn *types.Func,
	pa, pb provSet, na, nb string, ownParams map[*types.Var]string, ownContract []string) []Finding {
	if sc.decl == nil {
		return nil
	}
	fa, okA := soleOwnParam(pa, ownParams)
	fb, okB := soleOwnParam(pb, ownParams)
	if !okA || !okB || fa == fb {
		return nil
	}
	if containsStr(ownContract, fa) && containsStr(ownContract, fb) {
		return nil
	}
	return []Finding{{
		Pos:      pkg.Fset.Position(call.Pos()),
		Analyzer: "aliasguard",
		Msg: sc.decl.Name.Name + " forwards its parameters " + strconvQuote(fa) + " and " + strconvQuote(fb) +
			" into the //lint:noalias pair " + strconvQuote(na) + "," + strconvQuote(nb) + " of " + fn.Name() +
			" but does not declare //lint:noalias " + fa + "," + fb + " itself",
	}}
}

// soleOwnParam reports the enclosing declaration's parameter a
// provenance set resolves to, when that is all it resolves to.
func soleOwnParam(s provSet, ownParams map[*types.Var]string) (string, bool) {
	name, found := "", false
	for r := range s {
		if r.kind != "var" || r.path != "" {
			return "", false
		}
		n, ok := ownParams[r.obj]
		if !ok {
			return "", false
		}
		if found && n != name {
			return "", false
		}
		name, found = n, true
	}
	return name, found
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
