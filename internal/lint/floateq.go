package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqScope lists the numerical kernels: the packages whose float
// arithmetic decides whether the solve inside the paper's 77 s
// intraoperative budget converges, and where a raw == is either an
// unstated tolerance or an unstated exact-zero guard.
var floateqScope = []string{
	"internal/fem",
	"internal/solver",
	"internal/sparse",
	"internal/edt",
	"internal/mesh",
}

// floateq forbids ==/!= between floating-point operands in the
// numerical kernels. Tolerance comparisons must go through
// internal/numeric (EqAbs/EqRel); semantic exact-zero tests (division
// guards, sparsity checks) must be spelled numeric.Zero / numeric.
// NonZero so the exactness is visibly deliberate.
type floateq struct{}

func (floateq) Name() string { return "floateq" }

func (floateq) Doc() string {
	return "no ==/!= between floating-point operands in the numerical kernels " +
		"(fem, solver, sparse, edt, mesh): use numeric.EqAbs/EqRel for tolerance " +
		"comparisons and numeric.Zero/NonZero for deliberate exact-zero guards"
}

func (floateq) Run(pkg *Package) []Finding {
	if !inScope(pkg.RelPath, floateqScope) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg, be.X) || !isFloat(pkg, be.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(be.OpPos),
				Analyzer: "floateq",
				Msg: "floating-point " + be.Op.String() + " comparison; use numeric.EqAbs/EqRel " +
					"(tolerance) or numeric.Zero/NonZero (deliberate exact-zero guard)",
			})
			return true
		})
	}
	return out
}

// isFloat reports whether the expression's type is (or defaults to) a
// floating-point type.
func isFloat(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.Types[expr].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
