package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "/mod/internal/fem/solve.go", Line: 12, Column: 3},
			Analyzer: "phaseorder", Msg: `Solve requires phase "bc-applied" which is not established on every path to this call`},
		{Pos: token.Position{Filename: "/mod/internal/par/pool.go", Line: 40, Column: 2},
			Analyzer: "concsafe", Msg: "go statement spawns a goroutine with no deferred WaitGroup.Done, completion send, or recover"},
		{Pos: token.Position{Filename: ".simlint-baseline.json"},
			Analyzer: "baseline", Msg: "stale baseline finding: internal/x.go: ctxflow: gone; delete its entry"},
	}
}

// TestWriteJSON checks the -format json shape, including the empty-run
// case (an array, never null).
func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, "/mod", sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, b.String())
	}
	if len(got) != 3 {
		t.Fatalf("got %d elements, want 3", len(got))
	}
	if got[0]["file"] != "internal/fem/solve.go" || got[0]["line"] != float64(12) ||
		got[0]["analyzer"] != "phaseorder" {
		t.Errorf("first element = %v", got[0])
	}

	b.Reset()
	if err := WriteJSON(&b, "/mod", nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(b.String()); s != "[]" {
		t.Errorf("empty run renders %q, want []", s)
	}
}

// TestWriteSARIF validates the emitted log against the SARIF 2.1.0
// requirements GitHub code scanning enforces: version and $schema, a
// run with a named tool driver, every result referencing a declared
// rule, and physical locations with 1-based regions.
func TestWriteSARIF(t *testing.T) {
	var b strings.Builder
	if err := WriteSARIF(&b, "/mod", sampleFindings(), Analyzers()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0.json") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v lacks id or shortDescription", r)
		}
		if ruleIDs[r.ID] {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != len(sampleFindings()) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(sampleFindings()))
	}
	for i, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d references undeclared rule %q", i, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %d lacks level/message: %+v", i, r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("result %d artifact URI %q must be relative", i, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result %d region %+v is not 1-based", i, loc.Region)
		}
	}
}
