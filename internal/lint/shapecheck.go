package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// shapecheck verifies declared //lint:shape length-relation contracts
// on struct fields and function parameters. The sparse kernels index
// by trusted cross-slice invariants (a CSR's rowPtr has n+1 entries,
// vals and cols run in lockstep to rowPtr[n]; the GMRES workspace is
// sized by the Krylov dimension), and a construction that breaks one
// surfaces as an index panic — or silent corruption — deep inside a
// hot loop. Contracts are declared in doc comments:
//
//	//lint:shape len(RowPtr)==N+1 len(Val)==len(Col) len(Val)==RowPtr[N]
//
// on a struct type (names are fields) or a function (names are
// parameters). At every composite literal of a contracted type the
// analyzer resolves each side through the value-flow layer — make
// lengths, re-slicings, literal lengths, chased through reaching
// definitions — and reports relations that are provably violated.
// Relations it cannot resolve statically (appended slices, rowPtr[n]
// subscripts) must be discharged at runtime: the type declares one
// validating method with
//
//	//lint:shape validator
//
// and the construction (or any assignment replacing a contracted
// field's slice header) must be followed by a call to it in the same
// function. Call sites of contracted functions are checked the same
// way; unresolvable arguments pass silently (the fixtures pin the
// firing cases).
type shapecheck struct{}

func (shapecheck) Name() string { return "shapecheck" }

func (shapecheck) Doc() string {
	return "//lint:shape length-relation contracts on struct fields and parameters, checked at construction and mutation sites"
}

// shapeAtom is one operand of a relation term.
type shapeAtom struct {
	kind  string // "len", "name", "const", "index"
	name  string // field/parameter name for len/name/index
	index string // subscript name for index (RowPtr[N])
	c     int64  // value for const
}

// shapeTerm is mul*atom+add.
type shapeTerm struct {
	atom shapeAtom
	mul  int64
	add  int64
}

// shapeRel is one lhs==rhs relation.
type shapeRel struct {
	lhs, rhs shapeTerm
	src      string // as written, for findings
}

// parseShapeDirective extracts a //lint:shape directive's relations.
// validator reports the `//lint:shape validator` marker form. Syntax
// diagnostics live in suppressions(); a malformed relation parses as
// absent here.
func parseShapeDirective(doc *ast.CommentGroup) (rels []shapeRel, validator, ok bool) {
	if doc == nil {
		return nil, false, false
	}
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, "//lint:shape")
		if !found {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "validator" {
			return nil, true, true
		}
		for _, field := range strings.Fields(rest) {
			if rel, ok := parseShapeRel(field); ok {
				rels = append(rels, rel)
			}
		}
		return rels, false, true
	}
	return nil, false, false
}

func parseShapeRel(s string) (shapeRel, bool) {
	lhs, rhs, found := strings.Cut(s, "==")
	if !found {
		return shapeRel{}, false
	}
	lt, ok1 := parseShapeTerm(lhs)
	rt, ok2 := parseShapeTerm(rhs)
	if !ok1 || !ok2 {
		return shapeRel{}, false
	}
	return shapeRel{lhs: lt, rhs: rt, src: s}, true
}

// parseShapeTerm parses [INT*]atom[±INT]; atom is len(NAME), NAME,
// NAME[NAME], or INT.
func parseShapeTerm(s string) (shapeTerm, bool) {
	t := shapeTerm{mul: 1}
	if i := strings.IndexByte(s, '*'); i >= 0 {
		m, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return t, false
		}
		t.mul = m
		s = s[i+1:]
	}
	// A trailing ±INT, scanned from the end so len(x)+1 parses.
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '+' || s[i] == '-' {
			if v, err := strconv.ParseInt(s[i:], 10, 64); err == nil {
				t.add = v
				s = s[:i]
			}
			break
		}
		if s[i] < '0' || s[i] > '9' {
			break
		}
	}
	switch {
	case strings.HasPrefix(s, "len(") && strings.HasSuffix(s, ")"):
		name := s[4 : len(s)-1]
		if !identLike(name) {
			return t, false
		}
		t.atom = shapeAtom{kind: "len", name: name}
	case strings.HasSuffix(s, "]"):
		base, idx, found := strings.Cut(strings.TrimSuffix(s, "]"), "[")
		if !found || !identLike(base) || !identLike(idx) {
			return t, false
		}
		t.atom = shapeAtom{kind: "index", name: base, index: idx}
	default:
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			t.atom = shapeAtom{kind: "const", c: v}
			return t, true
		}
		if !identLike(s) {
			return t, false
		}
		t.atom = shapeAtom{kind: "name", name: s}
	}
	return t, true
}

func identLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// shapeNames lists the field/parameter names a contract references.
func shapeNames(rels []shapeRel) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a shapeAtom) {
		for _, n := range []string{a.name, a.index} {
			if n != "" && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, r := range rels {
		add(r.lhs.atom)
		add(r.rhs.atom)
	}
	return out
}

// ---------------------------------------------------------------------
// Resolved length values and their comparison.

// shapeVal is a resolved symbolic value: mul*base+add, or a constant
// when base is empty. known=false is "could not resolve".
type shapeVal struct {
	known bool
	base  string
	mul   int64
	add   int64
	c     int64
}

func shapeConst(c int64) shapeVal { return shapeVal{known: true, c: c} }

func (v shapeVal) scale(mul, add int64) shapeVal {
	if !v.known {
		return v
	}
	if v.base == "" {
		return shapeConst(mul*v.c + add)
	}
	return shapeVal{known: true, base: v.base, mul: mul * v.mul, add: mul*v.add + add}
}

// shapeOutcome of comparing two resolved values.
type shapeOutcome int

const (
	shapeUnresolved shapeOutcome = iota
	shapeProven
	shapeDisproven
)

func compareShapeVals(a, b shapeVal) shapeOutcome {
	if !a.known || !b.known {
		return shapeUnresolved
	}
	if a.base == "" && b.base == "" {
		if a.c == b.c {
			return shapeProven
		}
		return shapeDisproven
	}
	if a.base != "" && a.base == b.base && a.mul == b.mul {
		if a.add == b.add {
			return shapeProven
		}
		return shapeDisproven
	}
	return shapeUnresolved
}

// canonValue canonicalizes an integer-valued expression to mul*base+add
// by folding constants and peeling constant addends/factors.
func canonValue(pkg *Package, e ast.Expr) shapeVal {
	if e == nil {
		return shapeConst(0)
	}
	e = ast.Unparen(e)
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return shapeConst(v)
		}
		return shapeVal{}
	}
	if be, ok := e.(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.ADD, token.SUB:
			sign := int64(1)
			if be.Op == token.SUB {
				sign = -1
			}
			if c, ok := intConst(pkg, be.Y); ok {
				return canonValue(pkg, be.X).scale(1, sign*c)
			}
			if c, ok := intConst(pkg, be.X); ok && be.Op == token.ADD {
				return canonValue(pkg, be.Y).scale(1, c)
			}
		case token.MUL:
			if c, ok := intConst(pkg, be.Y); ok {
				return canonValue(pkg, be.X).scale(c, 0)
			}
			if c, ok := intConst(pkg, be.X); ok {
				return canonValue(pkg, be.Y).scale(c, 0)
			}
		}
	}
	return shapeVal{known: true, base: types.ExprString(e), mul: 1}
}

func intConst(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// lengthOf resolves the length of a slice-valued expression: make
// lengths, literal element counts, re-slicings, and identifiers chased
// through their reaching definitions (all definitions must agree).
func lengthOf(pkg *Package, vf *ValueFlow, e ast.Expr, depth int) shapeVal {
	if depth > provMaxDepth {
		return shapeVal{}
	}
	if e == nil {
		return shapeConst(0)
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if _, isNil := pkg.Info.Uses[x].(*types.Nil); isNil {
			return shapeConst(0)
		}
		obj, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok || !vf.IsLocal(obj) {
			return shapeVal{}
		}
		defs := vf.ReachingDefs(x)
		if len(defs) == 0 {
			return shapeVal{}
		}
		var have shapeVal
		for i, d := range defs {
			var v shapeVal
			switch {
			case d.Kind == VFDecl:
				v = shapeConst(0)
			case d.Kind == VFAssign && d.ResultIndex < 0:
				v = lengthOf(pkg, vf, d.RHS, depth+1)
			default:
				return shapeVal{}
			}
			if !v.known {
				return shapeVal{}
			}
			if i > 0 && compareShapeVals(have, v) != shapeProven {
				return shapeVal{}
			}
			have = v
		}
		return have
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(x.Args) >= 2 {
				return canonValue(pkg, x.Args[1])
			}
		}
		return shapeVal{}
	case *ast.CompositeLit:
		if isSliceExprType(pkg, x) && !hasKeyedElts(x) {
			return shapeConst(int64(len(x.Elts)))
		}
		return shapeVal{}
	case *ast.SliceExpr:
		if x.Low == nil && x.High == nil {
			return lengthOf(pkg, vf, x.X, depth+1)
		}
		if x.Low == nil && x.High != nil {
			return canonValue(pkg, x.High)
		}
		lo, okLo := intConst(pkg, x.Low)
		hi, okHi := intConst(pkg, x.High)
		if okLo && okHi {
			return shapeConst(hi - lo)
		}
		return shapeVal{}
	}
	return shapeVal{}
}

func isSliceExprType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && isSliceType(tv.Type)
}

func hasKeyedElts(cl *ast.CompositeLit) bool {
	for _, e := range cl.Elts {
		if _, ok := e.(*ast.KeyValueExpr); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Contract lookup.

// typeShapeContract resolves the //lint:shape contract of a named
// struct type, with its validator method (if declared).
func typeShapeContract(pkg *Package, named *types.Named) (rels []shapeRel, validator *types.Func) {
	if pkg.Mod == nil {
		return nil, nil
	}
	td := pkg.Mod.TypeSpec(named.Obj())
	if td == nil {
		return nil, nil
	}
	rels, isValidator, ok := parseShapeDirective(td.Doc)
	if !ok || isValidator || len(rels) == 0 {
		return nil, nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if decl := pkg.Mod.FuncDecl(m); decl != nil {
			if _, isVal, ok := parseShapeDirective(decl.Doc); ok && isVal {
				validator = m
				break
			}
		}
	}
	return rels, validator
}

// namedStructOf unwraps a (possibly pointer-to) named struct type.
func namedStructOf(t types.Type) (*types.Named, *types.Struct) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// ---------------------------------------------------------------------
// The analyzer.

func (shapecheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		out = append(out, checkShapeDecls(pkg, file)...)
		for _, sc := range funcScopes(file) {
			out = append(out, checkShapeSites(pkg, file, sc)...)
		}
	}
	return out
}

// checkShapeDecls semantically validates contracts declared in this
// file: names must exist, validators must be methods.
func checkShapeDecls(pkg *Package, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			rels, isValidator, ok := parseShapeDirective(d.Doc)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(d.Name.Pos())
			if isValidator {
				if d.Recv == nil {
					out = append(out, Finding{Pos: pos, Analyzer: "shapecheck",
						Msg: "//lint:shape validator must be declared on a method"})
				}
				continue
			}
			params := flatParamNames(d)
			for _, n := range shapeNames(rels) {
				if !containsStr(params, n) {
					out = append(out, Finding{Pos: pos, Analyzer: "shapecheck",
						Msg: "//lint:shape names " + strconvQuote(n) + " which is not a parameter of " + d.Name.Name})
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = d.Doc
				}
				rels, isValidator, ok := parseShapeDirective(doc)
				if !ok || isValidator {
					continue
				}
				pos := pkg.Fset.Position(ts.Name.Pos())
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					out = append(out, Finding{Pos: pos, Analyzer: "shapecheck",
						Msg: "//lint:shape relations may only be declared on struct types or functions"})
					continue
				}
				var fields []string
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						fields = append(fields, n.Name)
					}
				}
				for _, n := range shapeNames(rels) {
					if !containsStr(fields, n) {
						out = append(out, Finding{Pos: pos, Analyzer: "shapecheck",
							Msg: "//lint:shape names " + strconvQuote(n) + " which is not a field of " + ts.Name.Name})
					}
				}
			}
		}
	}
	return out
}

// shapeSite is one program point a contract must hold at.
type shapeSite struct {
	pos token.Pos
	// lit is a construction site; assign a contracted-field mutation;
	// call a contracted-function call site.
	lit    *ast.CompositeLit
	assign *ast.AssignStmt
	field  string
	call   *ast.CallExpr

	named     *types.Named
	rels      []shapeRel
	validator *types.Func
	callee    *types.Func
	params    []string
}

// shapeSearchBody is the region a validator call may discharge an
// unproven site from: the enclosing declaration's whole body, so a
// construction mutated inside a closure (the append-built InterpTable
// pattern) is discharged by the validator call that follows in the
// enclosing function.
func shapeSearchBody(file *ast.File, sc funcScope) ast.Node {
	if sc.decl != nil {
		return sc.body
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= sc.body.Pos() && sc.body.End() <= fd.Body.End() {
			return fd.Body
		}
	}
	return sc.body
}

// checkShapeSites finds and checks every contract-relevant site in one
// function scope; the value-flow build is lazy.
func checkShapeSites(pkg *Package, file *ast.File, sc funcScope) []Finding {
	var sites []shapeSite
	inspectShallow(sc.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[x]
			if !ok || tv.Type == nil {
				return true
			}
			named, st := namedStructOf(tv.Type)
			if named == nil || st == nil {
				return true
			}
			if rels, validator := typeShapeContract(pkg, named); len(rels) > 0 {
				sites = append(sites, shapeSite{pos: x.Pos(), lit: x, named: named, rels: rels, validator: validator})
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selInfo, ok := pkg.Info.Selections[sel]
				if !ok || selInfo.Kind() != types.FieldVal {
					continue
				}
				named, _ := namedStructOf(selInfo.Recv())
				if named == nil {
					continue
				}
				rels, validator := typeShapeContract(pkg, named)
				if len(rels) == 0 || !containsStr(shapeNames(rels), sel.Sel.Name) {
					continue
				}
				// Only slice-header replacement endangers length
				// relations; element writes never reach here (their LHS
				// is an IndexExpr).
				if !isSliceType(selInfo.Type()) {
					continue
				}
				sites = append(sites, shapeSite{pos: x.Pos(), assign: x, field: sel.Sel.Name,
					named: named, rels: rels, validator: validator})
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, x)
			if fn == nil || pkg.Mod == nil {
				return true
			}
			decl := pkg.Mod.FuncDecl(fn)
			if decl == nil {
				return true
			}
			rels, isValidator, ok := parseShapeDirective(decl.Doc)
			if !ok || isValidator || len(rels) == 0 {
				return true
			}
			sites = append(sites, shapeSite{pos: x.Pos(), call: x, callee: fn,
				rels: rels, params: flatParamNames(decl)})
		}
		return true
	})
	if len(sites) == 0 {
		return nil
	}
	vf := buildValueFlow(pkg, sc)
	search := shapeSearchBody(file, sc)
	var out []Finding
	for _, site := range sites {
		switch {
		case site.lit != nil:
			out = append(out, checkShapeLit(pkg, search, vf, site)...)
		case site.assign != nil:
			out = append(out, checkShapeMutation(pkg, search, site)...)
		case site.call != nil:
			out = append(out, checkShapeCall(pkg, vf, site)...)
		}
	}
	return out
}

// checkShapeLit checks a construction: every relation either proves
// statically or is discharged by a validator call after the literal.
func checkShapeLit(pkg *Package, search ast.Node, vf *ValueFlow, site shapeSite) []Finding {
	fields := make(map[string]ast.Expr)
	for _, e := range site.lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			// Positional struct literals are not used for contracted
			// types in this codebase; treat as unresolvable.
			return shapeUnprovenFinding(pkg, search, site, "positional construction")
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = kv.Value
		}
	}
	resolve := func(t shapeTerm) shapeVal {
		switch t.atom.kind {
		case "const":
			return shapeConst(t.atom.c).scale(t.mul, t.add)
		case "len":
			return lengthOf(pkg, vf, fields[t.atom.name], 0).scale(t.mul, t.add)
		case "name":
			return canonValue(pkg, fields[t.atom.name]).scale(t.mul, t.add)
		default: // index: runtime-only
			return shapeVal{}
		}
	}
	var out []Finding
	for _, rel := range site.rels {
		switch compareShapeVals(resolve(rel.lhs), resolve(rel.rhs)) {
		case shapeDisproven:
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(site.pos),
				Analyzer: "shapecheck",
				Msg: "construction of " + site.named.Obj().Name() + " violates its declared shape contract " +
					rel.src,
			})
		case shapeUnresolved:
			out = append(out, shapeUnprovenFinding(pkg, search, site, rel.src)...)
		}
	}
	return out
}

// shapeUnprovenFinding requires a validator call after the site; the
// finding names the relation that could not be proven.
func shapeUnprovenFinding(pkg *Package, search ast.Node, site shapeSite, what string) []Finding {
	if site.validator != nil && calledAfter(pkg, search, site.pos, site.validator) {
		return nil
	}
	name := site.named.Obj().Name()
	remedy := "; declare a //lint:shape validator method for " + name + " to discharge it at runtime"
	if site.validator != nil {
		remedy = "; call its shape validator " + site.validator.Name() + " afterwards in the same function"
	}
	verb := "construction of " + name + " cannot be proven to satisfy " + what
	if site.assign != nil {
		verb = "assignment to contracted field " + name + "." + site.field + " invalidates " + what
	}
	return []Finding{{Pos: pkg.Fset.Position(site.pos), Analyzer: "shapecheck", Msg: verb + remedy}}
}

// checkShapeMutation requires a validator call after a slice-header
// replacement of a contracted field.
func checkShapeMutation(pkg *Package, search ast.Node, site shapeSite) []Finding {
	var touches []string
	for _, rel := range site.rels {
		if rel.lhs.atom.name == site.field || rel.rhs.atom.name == site.field ||
			rel.lhs.atom.index == site.field || rel.rhs.atom.index == site.field {
			touches = append(touches, rel.src)
		}
	}
	if len(touches) == 0 {
		return nil
	}
	return shapeUnprovenFinding(pkg, search, site, touches[0])
}

// calledAfter reports a call to the method anywhere after pos in the
// search region.
func calledAfter(pkg *Package, search ast.Node, pos token.Pos, method *types.Func) bool {
	found := false
	ast.Inspect(search, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if fn := calleeFunc(pkg, call); fn == method {
			found = true
		}
		return true
	})
	return found
}

// checkShapeCall verifies a contracted function's call site: relations
// whose argument lengths resolve must hold; unresolvable ones pass.
func checkShapeCall(pkg *Package, vf *ValueFlow, site shapeSite) []Finding {
	argFor := func(name string) ast.Expr {
		for i, pn := range site.params {
			if pn == name && i < len(site.call.Args) {
				return site.call.Args[i]
			}
		}
		return nil
	}
	resolve := func(t shapeTerm) shapeVal {
		switch t.atom.kind {
		case "const":
			return shapeConst(t.atom.c).scale(t.mul, t.add)
		case "len":
			a := argFor(t.atom.name)
			if a == nil {
				return shapeVal{}
			}
			return lengthOf(pkg, vf, a, 0).scale(t.mul, t.add)
		case "name":
			a := argFor(t.atom.name)
			if a == nil {
				return shapeVal{}
			}
			return canonValue(pkg, a).scale(t.mul, t.add)
		default:
			return shapeVal{}
		}
	}
	var out []Finding
	for _, rel := range site.rels {
		if compareShapeVals(resolve(rel.lhs), resolve(rel.rhs)) == shapeDisproven {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(site.pos),
				Analyzer: "shapecheck",
				Msg: "call violates the shape contract " + rel.src + " declared on " +
					site.callee.Name(),
			})
		}
	}
	return out
}
