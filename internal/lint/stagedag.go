package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// stagedag certifies the pipeline's stage contracts — the invariants
// the content-addressed artifact cache in internal/core rests on. A
// pipeline stage declares its dataflow in a doc-comment directive:
//
//	//lint:stage name=preop-mesh deps=rigid-align inputs=alignedLabels outputs=mesh,brainSurf key=MeshCellSize,SnapMesh pure
//
// naming the stage, the earlier stages it consumes, the pipeline-state
// fields it reads and writes, the Config fields folded into its cache
// key, and (for content-addressed stages) the "pure" marker.
//
// For a pure stage the analyzer proves the body is a function of
// exactly what the cache key hashes:
//
//   - state-field reads must be declared inputs (and writes declared
//     outputs) — an undeclared read is a stale cache entry, not a style
//     issue;
//   - Config-field reads must be inside the declared key(...) set,
//     field-sensitively; calling a Config method or passing the whole
//     Config (or the state, or the receiver) to a callee loses that
//     sensitivity and is reported;
//   - no reads of package-level mutable state (a package var some
//     module function reassigns), and no math/rand or wall-clock calls
//     reachable through any call chain (internal/obs is exempt:
//     telemetry timestamps are pinned by detguard and spanend and are
//     not cache inputs);
//   - outputs must be freshly computed, not aliases of declared inputs:
//     on a cache hit the executor replaces outputs with decoded copies,
//     so an aliased output would give hit and miss runs different
//     sharing structure.
//
// Impure stages keep a lighter honesty obligation: every declared
// output is assigned and every declared input is read. Independently,
// every []stageNode DAG literal is cross-checked against the contracts
// of the run functions it wires: the literal's name/deps/inputs/
// outputs/keys/pure must match the contract exactly, deps must name
// earlier stages of the same literal, and any input produced inside the
// literal must come from a declared dep (the phaseorder-style proof
// that declared edges are the wired edges).
type stagedag struct{}

func (stagedag) Name() string { return "stagedag" }

func (stagedag) Doc() string {
	return "stage purity and cache-key completeness for //lint:stage contracts, plus DAG-literal honesty"
}

// stageContract is one parsed //lint:stage directive.
type stageContract struct {
	name    string
	deps    []string
	inputs  []string
	outputs []string
	keys    []string
	pure    bool
}

// parseStageDirective parses a //lint:stage doc directive. The bool
// reports presence; syntax diagnostics are suppressions()' job, so a
// malformed directive returns whatever parsed.
func parseStageDirective(doc *ast.CommentGroup) (stageContract, bool) {
	if doc == nil {
		return stageContract{}, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:stage")
		if !ok {
			continue
		}
		var sd stageContract
		for _, field := range strings.Fields(rest) {
			if field == "pure" {
				sd.pure = true
				continue
			}
			key, val, _ := strings.Cut(field, "=")
			list := splitPhases(val)
			switch key {
			case "name":
				if len(list) > 0 {
					sd.name = list[0]
				}
			case "deps":
				sd.deps = append(sd.deps, list...)
			case "inputs":
				sd.inputs = append(sd.inputs, list...)
			case "outputs":
				sd.outputs = append(sd.outputs, list...)
			case "key":
				sd.keys = append(sd.keys, list...)
			}
		}
		return sd, true
	}
	return stageContract{}, false
}

func (stagedag) Run(pkg *Package) []Finding {
	var out []Finding
	seen := make(map[string]token.Position)
	for _, file := range pkg.Files {
		for _, sc := range funcScopes(file) {
			if sc.decl == nil {
				continue
			}
			sd, ok := parseStageDirective(sc.decl.Doc)
			if !ok || sd.name == "" { // malformed syntax is reported by suppressions()
				continue
			}
			pos := pkg.Fset.Position(sc.decl.Pos())
			if prev, dup := seen[sd.name]; dup {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "duplicate stage contract " + strconvQuote(sd.name) +
						" (also declared at " + prev.String() + ")"})
			} else {
				seen[sd.name] = pos
			}
			out = append(out, checkStageBody(pkg, sc, sd)...)
		}
		out = append(out, checkDAGLiterals(pkg, file)...)
	}
	return out
}

// stageStateParam identifies the pipeline-state parameter: by
// convention the stage function's final parameter, a pointer to a
// struct whose fields are the contract's input/output vocabulary.
func stageStateParam(pkg *Package, decl *ast.FuncDecl) *types.Var {
	params := decl.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) != 1 {
		return nil
	}
	v, _ := pkg.Info.Defs[last.Names[0]].(*types.Var)
	if v == nil {
		return nil
	}
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	_, isStruct := named.Underlying().(*types.Struct)
	if !isStruct {
		return nil
	}
	return v
}

func stageRecvVar(pkg *Package, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pkg.Info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// isConfigType reports whether t is the analyzed package's pipeline
// configuration type (named "Config"), whose field reads the key(...)
// check tracks.
func isConfigType(pkg *Package, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Config" && named.Obj().Pkg() == pkg.Types
}

func stringSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// checkStageBody verifies one contract-carrying stage function against
// its declaration.
func checkStageBody(pkg *Package, sc funcScope, sd stageContract) []Finding {
	var out []Finding
	declPos := pkg.Fset.Position(sc.decl.Pos())
	state := stageStateParam(pkg, sc.decl)
	if state == nil {
		return []Finding{{Pos: declPos, Analyzer: "stagedag",
			Msg: "stage " + strconvQuote(sd.name) +
				" must take the pipeline state as its final pointer-to-struct parameter"}}
	}
	recv := stageRecvVar(pkg, sc.decl)
	inSet := stringSet(sd.inputs)
	outSet := stringSet(sd.outputs)
	keySet := stringSet(sd.keys)

	// Direct assignment targets, so state-field selectors classify as
	// reads or writes.
	writeTargets := make(map[ast.Expr]bool)
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				writeTargets[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writeTargets[ast.Unparen(st.X)] = true
		}
		return true
	})

	readFields := make(map[string]bool)
	writtenFields := make(map[string]bool)
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := pkg.Info.Uses[id].(*types.Var)
		return v
	}

	ast.Inspect(sc.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pos := pkg.Fset.Position(sel.Pos())
		base := varOf(sel.X)
		switch {
		case base != nil && base == state:
			f := sel.Sel.Name
			if writeTargets[sel] {
				writtenFields[f] = true
				if sd.pure && !outSet[f] {
					out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
						Msg: "pure stage " + strconvQuote(sd.name) + " writes state field " +
							strconvQuote(f) + ", which is not a declared output"})
				}
			} else {
				readFields[f] = true
				if sd.pure && !inSet[f] && !outSet[f] {
					out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
						Msg: "pure stage " + strconvQuote(sd.name) + " reads state field " +
							strconvQuote(f) + ", an undeclared input (the cache key cannot see it)"})
				}
			}
		case base != nil && recv != nil && base == recv && sd.pure:
			// Receiver access: the Config field is the blessed root for
			// key-checked reads; anything else is hidden state.
			tv := pkg.Info.Types[sel]
			if _, isFn := pkg.Info.Uses[sel.Sel].(*types.Func); isFn {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) + " calls receiver method " +
						sel.Sel.Name + "; the cache key cannot see what it reads"})
			} else if !isConfigType(pkg, tv.Type) {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) + " reads receiver field " +
						strconvQuote(sel.Sel.Name) + ", an undeclared input (the cache key cannot see it)"})
			}
		}
		// Config field sensitivity, on any Config-typed base expression
		// (p.cfg.X, or a local Config copy).
		if tv, ok := pkg.Info.Types[sel.X]; ok && isConfigType(pkg, tv.Type) && sd.pure {
			switch pkg.Info.Uses[sel.Sel].(type) {
			case *types.Func:
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) + " calls Config method " +
						sel.Sel.Name + "; the key(...) check is field-sensitive and cannot follow it"})
			case *types.Var:
				if !keySet[sel.Sel.Name] {
					out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
						Msg: "pure stage " + strconvQuote(sd.name) + " reads Config." + sel.Sel.Name +
							" outside its declared key set (a stale cache hit would ignore it)"})
				}
			}
		}
		return true
	})

	if sd.pure {
		out = append(out, checkStageEscapes(pkg, sc, sd, state, recv)...)
		out = append(out, checkStageGlobals(pkg, sc, sd)...)
		out = append(out, checkStageDeterminism(pkg, sc, sd)...)
		out = append(out, checkOutputFreshness(pkg, sc, sd, state)...)
	}
	for _, o := range sd.outputs {
		if !writtenFields[o] {
			out = append(out, Finding{Pos: declPos, Analyzer: "stagedag",
				Msg: "stage " + strconvQuote(sd.name) + " declares output " + strconvQuote(o) +
					" which is never assigned"})
		}
	}
	for _, in := range sd.inputs {
		if !readFields[in] {
			out = append(out, Finding{Pos: declPos, Analyzer: "stagedag",
				Msg: "stage " + strconvQuote(sd.name) + " declares input " + strconvQuote(in) +
					" which is never read"})
		}
	}
	return out
}

// checkStageEscapes flags argument positions that defeat the
// field-sensitive analysis of a pure stage: handing the whole Config,
// the state, or the receiver to a callee.
func checkStageEscapes(pkg *Package, sc funcScope, sd stageContract, state, recv *types.Var) []Finding {
	var out []Finding
	ast.Inspect(sc.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range call.Args {
			pos := pkg.Fset.Position(a.Pos())
			if tv, ok := pkg.Info.Types[a]; ok && isConfigType(pkg, tv.Type) {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) +
						" passes the entire Config to a callee; pass the declared key fields instead"})
				continue
			}
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Uses[id].(*types.Var)
			if obj != nil && (obj == state || (recv != nil && obj == recv)) {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) + " passes " + id.Name +
						" to a callee; field-sensitive input tracking cannot follow it"})
			}
		}
		return true
	})
	return out
}

// mutatedGlobalsMemo caches the module-wide mutated-package-var scan
// per call graph (Run executes per package, in parallel).
var mutatedGlobalsMemo struct {
	mu  sync.Mutex
	g   *CallGraph
	set map[*types.Var]bool
}

// mutatedGlobals returns the set of package-level variables some
// declared module function reassigns (direct assignment or ++/--).
// Element and field mutations through an index or selector are not
// tracked — the check is a heuristic for the common "tuning knob"
// global, not an alias analysis.
func mutatedGlobals(g *CallGraph) map[*types.Var]bool {
	mutatedGlobalsMemo.mu.Lock()
	defer mutatedGlobalsMemo.mu.Unlock()
	if mutatedGlobalsMemo.g == g {
		return mutatedGlobalsMemo.set
	}
	set := make(map[*types.Var]bool)
	mark := func(pkg *Package, e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := pkg.Info.Uses[id].(*types.Var)
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			set[obj] = true
		}
	}
	for _, node := range g.funcs {
		if node.Decl == nil || node.Decl.Body == nil || node.Pkg == nil {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					mark(node.Pkg, lhs)
				}
			case *ast.IncDecStmt:
				mark(node.Pkg, st.X)
			}
			return true
		})
	}
	mutatedGlobalsMemo.g = g
	mutatedGlobalsMemo.set = set
	return set
}

// checkStageGlobals reports pure-stage reads of package-level vars
// that some module function mutates.
func checkStageGlobals(pkg *Package, sc funcScope, sd stageContract) []Finding {
	if pkg.Mod == nil {
		return nil
	}
	mutated := mutatedGlobals(pkg.Mod.Graph())
	var out []Finding
	ast.Inspect(sc.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := pkg.Info.Uses[id].(*types.Var)
		if obj == nil || !mutated[obj] {
			return true
		}
		out = append(out, Finding{Pos: pkg.Fset.Position(id.Pos()), Analyzer: "stagedag",
			Msg: "pure stage " + strconvQuote(sd.name) + " touches package-level mutable state " +
				strconvQuote(id.Name) + "; its value is invisible to the cache key"})
		return true
	})
	return out
}

// checkStageDeterminism walks the call graph from a pure stage and
// reports math/rand and wall-clock calls reachable outside
// internal/obs (the same sinks detguard pins in kernels — telemetry
// timestamps do not feed cached artifacts and stay exempt).
func checkStageDeterminism(pkg *Package, sc funcScope, sd stageContract) []Finding {
	if pkg.Mod == nil {
		return nil
	}
	g := pkg.Mod.Graph()
	fnObj, _ := pkg.Info.Defs[sc.decl.Name].(*types.Func)
	start := g.Node(fnObj)
	if start == nil {
		return nil
	}
	declPos := pkg.Fset.Position(sc.decl.Pos())
	var out []Finding
	seen := make(map[*CGNode]bool)
	var visit func(n *CGNode)
	visit = func(n *CGNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if n.Pkg == nil || n.Decl == nil || n.Decl.Body == nil {
			return
		}
		if inScope(n.Pkg.RelPath, []string{"internal/obs"}) {
			return
		}
		inspectShallow(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(n.Pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var what string
			switch p := fn.Pkg().Path(); {
			case p == "math/rand" || p == "math/rand/v2":
				what = "math/rand call"
			case p == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				what = "wall-clock read (time." + fn.Name() + ")"
			default:
				return true
			}
			pos := declPos
			suffix := " via " + cgName(n.Fn)
			if n == start {
				pos = pkg.Fset.Position(call.Pos())
				suffix = ""
			}
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "pure stage " + strconvQuote(sd.name) + " reaches " + what + suffix +
					"; cached replays would not reproduce it"})
			return true
		})
		for _, e := range n.Out {
			visit(e.Callee)
		}
	}
	visit(start)
	return out
}

// checkOutputFreshness verifies a pure stage's output assignments are
// freshly computed values (call results, composite literals, or locals
// holding them), never aliases of state fields: on a cache hit the
// executor overwrites outputs with decoded copies, so an output that
// aliased an input would make hit and miss runs structurally different.
func checkOutputFreshness(pkg *Package, sc funcScope, sd stageContract, state *types.Var) []Finding {
	vf := buildValueFlow(pkg, sc)
	var out []Finding
	ast.Inspect(sc.body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range st.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				continue
			}
			if obj, _ := pkg.Info.Uses[id].(*types.Var); obj != state {
				continue
			}
			rhs := st.Rhs[0]
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			}
			if src := stateAliasSource(pkg, vf, state, rhs, 4); src != nil {
				out = append(out, Finding{Pos: pkg.Fset.Position(st.Pos()), Analyzer: "stagedag",
					Msg: "pure stage " + strconvQuote(sd.name) + " output " + strconvQuote(sel.Sel.Name) +
						" aliases state field " + strconvQuote(src.Sel.Name) +
						"; outputs must be freshly computed (cache hits replace them with decoded copies)"}) //
			}
		}
		return true
	})
	return out
}

// stateAliasSource reports a state-field selector the expression's
// value may alias, following local definitions through the value-flow
// layer up to the given depth. Call results and their projections are
// treated as fresh — the callee builds them from (by-value) arguments.
func stateAliasSource(pkg *Package, vf *ValueFlow, state *types.Var, e ast.Expr, depth int) *ast.SelectorExpr {
	if depth == 0 || e == nil {
		return nil
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return nil
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s := stateAliasSource(pkg, vf, state, el, depth-1); s != nil {
				return s
			}
		}
		return nil
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return stateAliasSource(pkg, vf, state, x.X, depth-1)
		}
		return nil
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj, _ := pkg.Info.Uses[id].(*types.Var); obj == state {
				return x
			}
		}
		return stateAliasSource(pkg, vf, state, x.X, depth-1)
	case *ast.IndexExpr:
		return stateAliasSource(pkg, vf, state, x.X, depth-1)
	case *ast.SliceExpr:
		return stateAliasSource(pkg, vf, state, x.X, depth-1)
	case *ast.Ident:
		for _, d := range vf.ReachingDefs(x) {
			if d.Kind != VFAssign && d.Kind != VFRange {
				continue
			}
			if s := stateAliasSource(pkg, vf, state, d.RHS, depth-1); s != nil {
				return s
			}
		}
		return nil
	}
	return nil
}

// dagLitNode is one parsed stageNode composite literal.
type dagLitNode struct {
	lit     *ast.CompositeLit
	name    string
	deps    []string
	inputs  []string
	outputs []string
	keys    []string
	pure    bool
	run     *types.Func
	hasRun  bool
}

// checkDAGLiterals finds []stageNode composite literals and checks each
// against the //lint:stage contracts of the functions it wires.
func checkDAGLiterals(pkg *Package, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return true
		}
		named, ok := sl.Elem().(*types.Named)
		if !ok || named.Obj().Name() != "stageNode" {
			return true
		}
		out = append(out, checkOneDAGLiteral(pkg, lit)...)
		return false
	})
	return out
}

func checkOneDAGLiteral(pkg *Package, lit *ast.CompositeLit) []Finding {
	var out []Finding
	var nodes []dagLitNode
	for _, el := range lit.Elts {
		nl, ok := el.(*ast.CompositeLit)
		if !ok {
			continue
		}
		node, findings := parseDAGLitNode(pkg, nl)
		out = append(out, findings...)
		nodes = append(nodes, node)
	}

	// Contract cross-check: the literal must restate the run function's
	// //lint:stage contract exactly.
	for _, nd := range nodes {
		pos := pkg.Fset.Position(nd.lit.Pos())
		if !nd.hasRun {
			continue // validateDAG rejects the node at runtime
		}
		if nd.run == nil {
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "stage literal " + strconvQuote(nd.name) +
					" wires a run value stagedag cannot resolve to a declared function"})
			continue
		}
		decl := pkg.Mod.FuncDecl(nd.run)
		if decl == nil {
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "stage literal " + strconvQuote(nd.name) + " wires " + cgName(nd.run) +
					", which is not declared in this module"})
			continue
		}
		sd, ok := parseStageDirective(decl.Doc)
		if !ok {
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "stage literal " + strconvQuote(nd.name) + " wires " + cgName(nd.run) +
					", which has no //lint:stage contract"})
			continue
		}
		var diffs []string
		if nd.name != sd.name {
			diffs = append(diffs, "name")
		}
		if !equalNames(nd.deps, sd.deps) {
			diffs = append(diffs, "deps")
		}
		if !equalNames(nd.inputs, sd.inputs) {
			diffs = append(diffs, "inputs")
		}
		if !equalNames(nd.outputs, sd.outputs) {
			diffs = append(diffs, "outputs")
		}
		if !equalNames(nd.keys, sd.keys) {
			diffs = append(diffs, "keys")
		}
		if nd.pure != sd.pure {
			diffs = append(diffs, "pure")
		}
		if len(diffs) > 0 {
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "stage literal " + strconvQuote(nd.name) + " does not match the //lint:stage contract of " +
					cgName(nd.run) + " (differs in " + strings.Join(diffs, ", ") + ")"})
		}
	}

	// Wiring check: deps name earlier stages; an input produced inside
	// this DAG must come from a declared dep.
	producers := make(map[string][]int)
	for i, nd := range nodes {
		for _, o := range nd.outputs {
			producers[o] = append(producers[o], i)
		}
	}
	earlier := make(map[string]int)
	for i, nd := range nodes {
		pos := pkg.Fset.Position(nd.lit.Pos())
		if prev, dup := earlier[nd.name]; dup && nd.name != "" {
			out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
				Msg: "stage literal " + strconvQuote(nd.name) + " duplicates stage " +
					strconvQuote(nodes[prev].name) + " in the same DAG"})
		}
		depSet := stringSet(nd.deps)
		for _, d := range nd.deps {
			if _, ok := earlier[d]; !ok {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "stage literal " + strconvQuote(nd.name) + " depends on " + strconvQuote(d) +
						", which is not an earlier stage in this DAG"})
			}
		}
		for _, in := range nd.inputs {
			prod := producers[in]
			if len(prod) == 0 {
				continue // external root (pipeline input or session baseline)
			}
			fed := false
			for _, pi := range prod {
				if pi < i && depSet[nodes[pi].name] {
					fed = true
					break
				}
			}
			if !fed {
				out = append(out, Finding{Pos: pos, Analyzer: "stagedag",
					Msg: "stage literal " + strconvQuote(nd.name) + " consumes " + strconvQuote(in) +
						", produced by stage " + strconvQuote(nodes[prod[0]].name) +
						", which is not among its declared deps"})
			}
		}
		earlier[nd.name] = i
	}
	return out
}

// parseDAGLitNode reads one stageNode composite literal. Fields must be
// literals (string/list/bool) for the cross-check to see them; a
// computed field defeats the certification and is reported.
func parseDAGLitNode(pkg *Package, nl *ast.CompositeLit) (dagLitNode, []Finding) {
	node := dagLitNode{lit: nl}
	var out []Finding
	opaque := func(field string, pos token.Pos) {
		out = append(out, Finding{Pos: pkg.Fset.Position(pos), Analyzer: "stagedag",
			Msg: "stage literal field " + strconvQuote(field) +
				" is not a literal value; stagedag cannot certify this DAG"})
	}
	for _, el := range nl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "name":
			s, ok := stringLit(kv.Value)
			if !ok {
				opaque("name", kv.Value.Pos())
				continue
			}
			node.name = s
		case "deps", "inputs", "outputs", "keys":
			list, ok := stringListLit(kv.Value)
			if !ok {
				opaque(key.Name, kv.Value.Pos())
				continue
			}
			switch key.Name {
			case "deps":
				node.deps = list
			case "inputs":
				node.inputs = list
			case "outputs":
				node.outputs = list
			case "keys":
				node.keys = list
			}
		case "pure":
			id, ok := ast.Unparen(kv.Value).(*ast.Ident)
			if !ok || (id.Name != "true" && id.Name != "false") {
				opaque("pure", kv.Value.Pos())
				continue
			}
			node.pure = id.Name == "true"
		case "run":
			node.hasRun = true
			switch e := ast.Unparen(kv.Value).(type) {
			case *ast.SelectorExpr:
				node.run, _ = pkg.Info.Uses[e.Sel].(*types.Func)
			case *ast.Ident:
				node.run, _ = pkg.Info.Uses[e].(*types.Func)
			}
		}
	}
	return node, out
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	// The token is a valid Go string literal (it type-checked); the
	// contract vocabulary never needs escapes, so trim the quotes.
	s := bl.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1], true
	}
	return "", false
}

func stringListLit(e ast.Expr) ([]string, bool) {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	list := make([]string, 0, len(cl.Elts))
	for _, el := range cl.Elts {
		s, ok := stringLit(el)
		if !ok {
			return nil, false
		}
		list = append(list, s)
	}
	return list, true
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
