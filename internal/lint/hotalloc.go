package lint

import (
	"go/ast"
	"go/types"
)

// hotalloc guards the annotated hot paths — the kernels the paper's
// real-time budget hangs on (CSR SpMV, the GMRES cycle, element
// stiffness assembly, the EDT scans). A function carrying the
// //lint:hotpath directive may not, inside its innermost loops,
// allocate via fmt formatting, make, or append, nor box values into
// interfaces: each of those turns an O(1) loop body into a
// garbage-collected one.
type hotalloc struct{}

func (hotalloc) Name() string { return "hotalloc" }

func (hotalloc) Doc() string {
	return "functions annotated //lint:hotpath may not call fmt formatters, make, " +
		"append, or convert to interface types inside their innermost loops"
}

func (h hotalloc) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			if fd.Body == nil || !containsLoop(fd.Body) {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(fd.Name.Pos()),
					Analyzer: "hotalloc",
					Msg:      "//lint:hotpath on a function without loops; drop the stale annotation",
				})
				continue
			}
			for _, loop := range innermostLoops(fd.Body) {
				out = append(out, h.checkLoop(pkg, loop)...)
			}
		}
	}
	return out
}

// innermostLoops returns the loops in the subtree that contain no
// nested loop (the bodies where per-iteration cost is multiplied by
// the full trip count of every enclosing loop).
func innermostLoops(body ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		var inner ast.Node
		switch l := n.(type) {
		case *ast.ForStmt:
			inner = l.Body
		case *ast.RangeStmt:
			inner = l.Body
		default:
			return true
		}
		if !containsLoop(inner) {
			out = append(out, inner)
			return false
		}
		return true
	})
	return out
}

func (hotalloc) checkLoop(pkg *Package, loop ast.Node) []Finding {
	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.Fset.Position(n.Pos()), Analyzer: "hotalloc", Msg: msg})
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtins and conversions.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[fun]; obj != nil {
				if b, ok := obj.(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						flag(call, "make inside the innermost loop of a //lint:hotpath function allocates per iteration; hoist the buffer")
					case "append":
						flag(call, "append inside the innermost loop of a //lint:hotpath function grows per iteration; preallocate outside the loop")
					}
					return true
				}
			}
		}
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
				if at := pkg.Info.Types[call.Args[0]].Type; at != nil {
					if _, already := at.Underlying().(*types.Interface); !already {
						flag(call, "conversion to an interface type boxes the value on every iteration of a //lint:hotpath innermost loop")
					}
				}
			}
			return true
		}
		fn := calleeFunc(pkg, call)
		for _, name := range [...]string{"Sprintf", "Sprint", "Sprintln", "Errorf"} {
			if isFuncNamed(fn, "fmt", name) {
				flag(call, "fmt."+name+" inside the innermost loop of a //lint:hotpath function allocates per iteration")
			}
		}
		return true
	})
	return out
}
