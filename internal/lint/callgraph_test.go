package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// cgNode finds the graph node of a fixture function by its rendered
// name ("cgfix.helper", "A.WorkCG").
func cgNode(t *testing.T, g *CallGraph, pkg *Package, name string) *CGNode {
	t.Helper()
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn != nil && cgName(fn) == name {
				if n := g.Node(fn); n != nil {
					return n
				}
				t.Fatalf("function %s has no graph node", name)
			}
		}
	}
	t.Fatalf("no declaration named %s in fixture", name)
	return nil
}

// edgeStrings renders a node's outgoing edges as "kind callee" in
// source order.
func edgeStrings(n *CGNode) []string {
	out := make([]string, 0, len(n.Out))
	for _, e := range n.Out {
		out = append(out, fmt.Sprintf("%s %s", e.Kind, cgName(e.Callee.Fn)))
	}
	return out
}

// TestCallGraphEdges pins the exact edge set of each construction
// case: static calls, goroutine launches, defer in loops, method
// values, function-typed field assignment, interface dispatch fan-out,
// and concrete method calls.
func TestCallGraphEdges(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "callgraph"), "repro/internal/cgfix")
	g := pkg.Mod.Graph()
	for _, tc := range []struct {
		caller string
		edges  []string
	}{
		{"cgfix.CallsHelper", []string{"call cgfix.helper"}},
		{"cgfix.Spawns", []string{"go cgfix.sleeps"}},
		{"cgfix.DefersInLoop", []string{"defer cgfix.sleeps"}},
		{"cgfix.MethodValue", []string{"ref A.WorkCG"}},
		{"cgfix.FieldAssign", []string{"ref cgfix.helper2"}},
		{"cgfix.Dispatch", []string{"iface A.WorkCG", "iface B.WorkCG"}},
		{"cgfix.Concrete", []string{"call A.WorkCG"}},
		{"cgfix.Nested", []string{"call cgfix.mid"}},
		{"cgfix.helper", nil},
	} {
		t.Run(tc.caller, func(t *testing.T) {
			n := cgNode(t, g, pkg, tc.caller)
			got := edgeStrings(n)
			if strings.Join(got, "; ") != strings.Join(tc.edges, "; ") {
				t.Errorf("edges of %s = %v, want %v", tc.caller, got, tc.edges)
			}
		})
	}
}

// TestCallGraphSummaries pins the propagation semantics: defers carry
// effects to the caller, goroutine launches do not (the spawn itself
// allocates), and multi-frame chains render edge by edge.
func TestCallGraphSummaries(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "callgraph"), "repro/internal/cgfix")
	g := pkg.Mod.Graph()
	check := func(name string, eff Effect, want bool) {
		t.Helper()
		if got := cgNode(t, g, pkg, name).Has(eff); got != want {
			t.Errorf("%s.Has(%s) = %v, want %v", name, eff, got, want)
		}
	}
	check("cgfix.helper", EffAlloc, false)
	check("cgfix.sleeps", EffBlock, true)
	check("cgfix.locks", EffLock, true)

	// Defer propagates the callee's block effect; go does not, but the
	// spawn itself is an allocation.
	check("cgfix.DefersInLoop", EffBlock, true)
	check("cgfix.Spawns", EffBlock, false)
	check("cgfix.Spawns", EffAlloc, true)

	// Interface dispatch reaches the implementers (clean here).
	check("cgfix.Dispatch", EffLock, false)

	// Two-frame chain with the witness rendered edge by edge.
	check("cgfix.Nested", EffLock, true)
	if got, want := cgNode(t, g, pkg, "cgfix.Nested").Chain(EffLock),
		"cgfix.Nested -> cgfix.mid -> cgfix.locks: sync.Mutex.Lock"; got != want {
		t.Errorf("Chain = %q, want %q", got, want)
	}
	if got := cgNode(t, g, pkg, "cgfix.helper").Chain(EffLock); got != "" {
		t.Errorf("Chain on an effect-free node = %q, want empty", got)
	}
}
