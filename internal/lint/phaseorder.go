package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// phaseorder enforces the solver's assemble → boundary-condition →
// solve discipline along control-flow paths. Functions declare their
// contract in a doc-comment directive:
//
//	//lint:phase requires=assembled,bc-applied provides=bc-applied forbids=bc-applied
//
// requires: every listed phase must already be established on every
// path reaching a call of this function. provides: the call establishes
// the listed phases. forbids: the call is illegal on any path where the
// listed phase may already have been established in the same function
// (ApplyDirichlet must run once; load assembly must not follow it).
//
// Phases established by a *caller* are modelled with an entry
// assumption: if the analyzed function contains no call providing phase
// p, then p is assumed established at entry (the contract binds
// whichever scope actually sequences the calls — typically the pipeline
// stage closure). If some call in the function provides p, entry starts
// with p un-established and the CFG must prove the provider precedes
// every requirer.
type phaseorder struct{}

func (phaseorder) Name() string { return "phaseorder" }

func (phaseorder) Doc() string {
	return "solver phase-order contracts (//lint:phase requires/provides/forbids) checked along CFG paths"
}

// phaseContract is one function's parsed //lint:phase directive.
type phaseContract struct {
	requires []string
	provides []string
	forbids  []string
}

func (c phaseContract) empty() bool {
	return len(c.requires) == 0 && len(c.provides) == 0 && len(c.forbids) == 0
}

// parsePhaseDirective parses the argument list of a //lint:phase
// directive. The bool reports whether the directive was present; a
// present-but-malformed directive returns ok with whatever parsed,
// leaving syntax diagnostics to suppressions().
func parsePhaseDirective(doc *ast.CommentGroup) (phaseContract, bool) {
	if doc == nil {
		return phaseContract{}, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:phase")
		if !ok {
			continue
		}
		var pc phaseContract
		for _, field := range strings.Fields(rest) {
			key, val, _ := strings.Cut(field, "=")
			list := splitPhases(val)
			switch key {
			case "requires":
				pc.requires = append(pc.requires, list...)
			case "provides":
				pc.provides = append(pc.provides, list...)
			case "forbids":
				pc.forbids = append(pc.forbids, list...)
			}
		}
		return pc, true
	}
	return phaseContract{}, false
}

func splitPhases(val string) []string {
	var out []string
	for _, p := range strings.Split(val, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// contractOfCall resolves the contract of the function a call invokes,
// looking the declaration up across packages through the module index.
func contractOfCall(pkg *Package, call *ast.CallExpr) (phaseContract, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || pkg.Mod == nil {
		return phaseContract{}, false
	}
	decl := pkg.Mod.FuncDecl(fn)
	if decl == nil {
		return phaseContract{}, false
	}
	return parsePhaseDirective(decl.Doc)
}

// phaseFact is the dataflow fact: for each phase index, whether it is
// established on every path (must) and whether it may have been
// established by a call within this function (may).
type phaseFact struct {
	must []bool
	may  []bool
}

func (f phaseFact) clone() phaseFact {
	g := phaseFact{must: make([]bool, len(f.must)), may: make([]bool, len(f.may))}
	copy(g.must, f.must)
	copy(g.may, f.may)
	return g
}

func phaseMeet(a, b phaseFact) phaseFact {
	out := a.clone()
	for i := range out.must {
		out.must[i] = out.must[i] && b.must[i]
		out.may[i] = out.may[i] || b.may[i]
	}
	return out
}

func phaseEqual(a, b phaseFact) bool {
	for i := range a.must {
		if a.must[i] != b.must[i] || a.may[i] != b.may[i] {
			return false
		}
	}
	return true
}

func (phaseorder) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, sc := range funcScopes(file) {
			out = append(out, checkPhaseOrder(pkg, sc)...)
		}
	}
	return out
}

func checkPhaseOrder(pkg *Package, sc funcScope) []Finding {
	// Gather the contract calls of this scope (not descending into
	// nested function literals — each literal is its own scope with its
	// own caller assumption).
	type contractCall struct {
		call *ast.CallExpr
		pc   phaseContract
	}
	calls := make(map[*ast.CallExpr]phaseContract)
	providedHere := make(map[string]bool)
	phaseSet := make(map[string]bool)
	inspectShallow(sc.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pc, ok := contractOfCall(pkg, call); ok && !pc.empty() {
			calls[call] = pc
			for _, p := range pc.provides {
				providedHere[p] = true
				phaseSet[p] = true
			}
			for _, p := range pc.requires {
				phaseSet[p] = true
			}
			for _, p := range pc.forbids {
				phaseSet[p] = true
			}
		}
		return true
	})
	if len(calls) == 0 {
		return nil
	}
	phases := make([]string, 0, len(phaseSet))
	for p := range phaseSet {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	index := make(map[string]int, len(phases))
	for i, p := range phases {
		index[p] = i
	}

	entry := phaseFact{must: make([]bool, len(phases)), may: make([]bool, len(phases))}
	for i, p := range phases {
		// Caller assumption: a phase nothing in this function provides is
		// taken as established before entry.
		entry.must[i] = !providedHere[p]
	}

	// contractsIn collects the contract calls of one CFG node in source
	// order (nested calls evaluate inside-out, but contract calls are
	// never nested in practice; source order is the sensible tiebreak).
	contractsIn := func(n ast.Node) []contractCall {
		var cs []contractCall
		inspectShallow(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if pc, ok := calls[call]; ok {
					cs = append(cs, contractCall{call, pc})
				}
			}
			return true
		})
		return cs
	}

	apply := func(f phaseFact, pc phaseContract) phaseFact {
		g := f.clone()
		for _, p := range pc.provides {
			g.must[index[p]] = true
			g.may[index[p]] = true
		}
		return g
	}

	c := BuildCFG(sc.body)
	in := Forward(c, entry, phaseMeet,
		func(bl *Block, f phaseFact) phaseFact {
			for _, n := range bl.Nodes {
				for _, cc := range contractsIn(n) {
					f = apply(f, cc.pc)
				}
			}
			return f
		},
		phaseEqual,
	)

	// Report pass: re-walk each block with its IN fact and check every
	// contract call against the fact holding at that point.
	var out []Finding
	for _, bl := range c.Blocks {
		f, ok := in[bl]
		if !ok {
			continue
		}
		for _, n := range bl.Nodes {
			for _, cc := range contractsIn(n) {
				name := calleeFunc(pkg, cc.call).Name()
				for _, r := range cc.pc.requires {
					if !f.must[index[r]] {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(cc.call.Pos()),
							Analyzer: "phaseorder",
							Msg: name + " requires phase " + strconvQuote(r) +
								" which is not established on every path to this call",
						})
					}
				}
				for _, fb := range cc.pc.forbids {
					if f.may[index[fb]] {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(cc.call.Pos()),
							Analyzer: "phaseorder",
							Msg: name + " must not be reachable after phase " + strconvQuote(fb) +
								" is applied",
						})
					}
				}
				f = apply(f, cc.pc)
			}
		}
	}
	return out
}
