package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// inScope reports whether a package's module-relative path lies in one
// of the listed subtrees ("internal/fem" matches internal/fem and any
// directory below it).
func inScope(relPath string, scopes []string) bool {
	for _, s := range scopes {
		if relPath == s || strings.HasPrefix(relPath, s+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call invokes, or nil
// for calls through function values, builtins, and type conversions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isFuncNamed reports whether fn is the named function of a package
// whose import path is pathSuffix or ends in "/"+pathSuffix. Matching
// by suffix keeps the analyzers vendoring- and module-name-agnostic.
func isFuncNamed(fn *types.Func, pathSuffix, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// containsLoop reports whether the subtree holds a for or range
// statement, including inside nested function literals (work done in a
// closure launched by the function still runs under its contract).
func containsLoop(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// firstParamIsContext reports whether the function type's first
// parameter is a context.Context.
func firstParamIsContext(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	t := pkg.Info.Types[ft.Params.List[0].Type].Type
	return t != nil && t.String() == "context.Context"
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error
// interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// resultsIncludeError reports whether a call expression's result type
// includes an error (either a single error result or an error among a
// tuple's components).
func resultsIncludeError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Implements(t.At(i).Type(), errorIface) {
				return true
			}
		}
		return false
	default:
		return types.Implements(t, errorIface)
	}
}

// funcScope is one function body: a declaration or a literal. Analyzers
// that reason about "the same function" (spanend's defer pairing)
// iterate these.
type funcScope struct {
	decl *ast.FuncDecl // nil for literals
	typ  *ast.FuncType
	body *ast.BlockStmt
}

// funcScopes lists every function declaration and literal in the file.
func funcScopes(file *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcScope{decl: fn, typ: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{typ: fn.Type, body: fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow visits the subtree rooted at n but does not descend
// into nested function literals: the traversal stays within one
// function's own statements.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// docHas reports whether a function's doc comment contains the given
// phrase (case-insensitive, with comment line wrapping normalized to
// single spaces). The ctxflow analyzer uses it to recognise the
// documented background-context compat wrappers.
func docHas(decl *ast.FuncDecl, phrase string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	text := strings.Join(strings.Fields(decl.Doc.Text()), " ")
	return strings.Contains(strings.ToLower(text), strings.ToLower(phrase))
}

// hasDirective reports whether the comment group carries the given
// //lint: directive verb.
func hasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:")
		if !ok {
			continue
		}
		v, _, _ := strings.Cut(rest, " ")
		if v == verb {
			return true
		}
	}
	return false
}
