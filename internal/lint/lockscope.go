package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// lockscopeScope lists the packages that hold sync.Mutex locks around
// shared state on the request path: the service layer, the telemetry
// sinks, and the parallel runtime.
var lockscopeScope = []string{
	"internal/service",
	"internal/obs",
	"internal/par",
}

// lockscope proves, along CFG paths joined with call-graph summaries,
// that no blocking operation is reachable while a sync.Mutex or
// sync.RWMutex is held. The held-lock set is a forward may-analysis
// over the function's CFG (gen at X.Lock()/X.RLock(), kill at
// X.Unlock()/X.RUnlock(); a deferred unlock keeps the lock held to the
// function exit, which is exactly the scope a deferred unlock creates).
// At every node where the set is non-empty, the analyzer flags
//
//   - channel sends, receives, and blocking select comm clauses;
//   - acquisition of a second lock (nested locking orders deadlocks);
//   - calls to blocking stdlib functions (sleeps, I/O, waits);
//   - calls to module functions whose call-graph summary says they
//     acquire locks or block, with the offending chain in the finding.
//
// A critical section that blocks turns the paper's per-request mutex
// into a convoy: every goroutine contending for the lock inherits the
// block, which is precisely what the real-time solve budget cannot
// absorb.
type lockscope struct{}

func (lockscope) Name() string { return "lockscope" }

func (lockscope) Doc() string {
	return "no blocking operation — channel op, second lock acquisition, blocking " +
		"stdlib call, or a call whose summary reaches one — may occur while a " +
		"sync.Mutex/RWMutex is held in internal/service, internal/obs, internal/par " +
		"(CFG paths joined with call-graph summaries)"
}

func (l lockscope) Run(pkg *Package) []Finding {
	if !inScope(pkg.RelPath, lockscopeScope) {
		return nil
	}
	var out []Finding
	var graph *CallGraph
	for _, file := range pkg.Files {
		for _, fs := range funcScopes(file) {
			if !acquiresMutex(pkg, fs.body) {
				continue
			}
			if graph == nil {
				graph = pkg.Mod.Graph()
			}
			out = append(out, l.checkBody(pkg, graph, fs.body)...)
		}
	}
	return out
}

// acquiresMutex is the cheap pre-filter: does this body lock anything
// in its own statements (literals and deferred calls excluded)?
func acquiresMutex(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	walkOwnCode(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !found {
			if _, acq, _ := mutexOp(pkg, call); acq {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkOwnCode visits the subtree without descending into nested
// function literals (their own scope) or defer statements (they run at
// function exit, outside the critical section the dataflow tracks).
func walkOwnCode(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		return f(x)
	})
}

// mutexOp classifies a call as a sync.Mutex/RWMutex acquisition or
// release and names the lock by its receiver expression.
func mutexOp(pkg *Package, call *ast.CallExpr) (key string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	var acq, rel bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acq = true
	case "Unlock", "RUnlock":
		rel = true
	default:
		return "", false, false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return "", false, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, rel
}

func (l lockscope) checkBody(pkg *Package, graph *CallGraph, body *ast.BlockStmt) []Finding {
	c := BuildCFG(body)
	exempt := exemptCommOps(body)

	// The fact is the sorted set of held lock names; meet is union
	// (may-held: a lock held on any path into the block counts).
	transfer := func(bl *Block, in []string) []string {
		held := slices.Clone(in)
		for _, n := range bl.Nodes {
			held = applyLockOps(pkg, n, held)
		}
		return held
	}
	in := Forward(c, nil, heldUnion, transfer, slices.Equal)

	var out []Finding
	for _, bl := range c.Blocks {
		held := slices.Clone(in[bl])
		for _, n := range bl.Nodes {
			if len(held) > 0 {
				out = append(out, l.flagNode(pkg, graph, n, held, exempt)...)
			}
			held = applyLockOps(pkg, n, held)
		}
	}
	return out
}

// applyLockOps folds one CFG node's lock acquisitions and releases
// into the held set. Deferred unlocks are not kills: the lock stays
// held through every following node, which is the defer's actual scope.
func applyLockOps(pkg *Package, n ast.Node, held []string) []string {
	walkOwnCode(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acq, rel := mutexOp(pkg, call); acq || rel {
			if acq {
				held = heldInsert(held, key)
			} else {
				held = heldRemove(held, key)
			}
		}
		return true
	})
	return held
}

// flagNode reports every blocking operation in one CFG node executed
// with the given locks held.
func (l lockscope) flagNode(pkg *Package, graph *CallGraph, n ast.Node, held []string, exempt map[ast.Node]bool) []Finding {
	heldDesc := strings.Join(held, ", ")
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: pkg.Fset.Position(pos), Analyzer: "lockscope", Msg: msg})
	}
	// A bare channel-typed node is a range-over-channel head (the CFG
	// stores the range expression as the loop-head node).
	if e, ok := n.(ast.Expr); ok {
		if t := pkg.Info.Types[e].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				flag(e.Pos(), "range over a channel while "+heldDesc+" is held blocks every goroutine contending for the lock")
			}
		}
	}
	walkOwnCode(n, func(x ast.Node) bool {
		switch y := x.(type) {
		case *ast.SendStmt:
			if !exempt[y] {
				flag(y.Pos(), "channel send while "+heldDesc+" is held blocks every goroutine contending for the lock")
			}
		case *ast.UnaryExpr:
			if y.Op == token.ARROW && !exempt[y] {
				flag(y.Pos(), "channel receive while "+heldDesc+" is held blocks every goroutine contending for the lock")
			}
		case *ast.CallExpr:
			if key, acq, rel := mutexOp(pkg, y); acq || rel {
				if acq {
					if slices.Contains(held, key) {
						flag(y.Pos(), "reacquisition of "+key+" while it is already held deadlocks")
					} else {
						flag(y.Pos(), "acquisition of "+key+" while "+heldDesc+" is held nests critical sections (lock-ordering hazard)")
					}
				}
				return true
			}
			if eff, desc, ok := classifyCall(pkg, y); ok {
				switch eff {
				case EffLock:
					flag(y.Pos(), desc+" while "+heldDesc+" is held nests critical sections (lock-ordering hazard)")
				case EffBlock:
					flag(y.Pos(), desc+" while "+heldDesc+" is held blocks every goroutine contending for the lock")
				}
			}
			for _, target := range calleeTargets(graph, pkg, y) {
				for _, eff := range []Effect{EffLock, EffBlock} {
					if !target.Has(eff) {
						continue
					}
					flag(y.Pos(), "call while "+heldDesc+" is held reaches code that "+
						eff.String()+": "+target.Chain(eff))
				}
			}
		}
		return true
	})
	return out
}

// heldInsert / heldRemove / heldUnion maintain the sorted held-lock
// set without mutating their inputs (Forward requires fresh facts).
func heldInsert(held []string, key string) []string {
	i, found := slices.BinarySearch(held, key)
	if found {
		return held
	}
	return slices.Insert(slices.Clone(held), i, key)
}

func heldRemove(held []string, key string) []string {
	i, found := slices.BinarySearch(held, key)
	if !found {
		return held
	}
	return slices.Delete(slices.Clone(held), i, i+1)
}

func heldUnion(a, b []string) []string {
	out := slices.Clone(a)
	for _, k := range b {
		out = heldInsert(out, k)
	}
	return out
}
