package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` as the body of a function and returns its
// BlockStmt.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() error {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGStraightLine(t *testing.T) {
	c := BuildCFG(parseBody(t, "x := 1\nx++\nreturn nil"))
	if len(c.Blocks) != 2 { // entry + exit
		t.Fatalf("blocks = %d, want 2", len(c.Blocks))
	}
	if c.Entry.Index != 0 {
		t.Errorf("entry index = %d, want 0", c.Entry.Index)
	}
	if len(c.Entry.Nodes) != 3 {
		t.Errorf("entry nodes = %d, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Errorf("entry should flow straight to exit")
	}
}

func TestCFGIfElseBothReturn(t *testing.T) {
	c := BuildCFG(parseBody(t, `
if cond() {
	return nil
} else {
	return nil
}`))
	// after-block of the if is unreachable and must be dropped.
	for _, bl := range c.Blocks {
		if bl != c.Exit && len(bl.Succs) == 0 {
			t.Errorf("reachable block %d has no successors and is not exit", bl.Index)
		}
	}
	// Both branch blocks flow to exit.
	n := 0
	for _, bl := range c.Blocks {
		for _, s := range bl.Succs {
			if s == c.Exit {
				n++
			}
		}
	}
	if n != 2 {
		t.Errorf("edges into exit = %d, want 2", n)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	c := BuildCFG(parseBody(t, `
x := 0
if cond() {
	x = 1
}
return use(x)`))
	// entry must have two successors: then-block and after-block.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("entry successors = %d, want 2", len(c.Entry.Succs))
	}
}

func TestCFGLoopDepth(t *testing.T) {
	c := BuildCFG(parseBody(t, `
a := 0
for i := 0; i < 10; i++ {
	for _, v := range xs {
		a += v
	}
}
return ok(a)`))
	maxDepth := 0
	for _, bl := range c.Blocks {
		if bl.LoopDepth > maxDepth {
			maxDepth = bl.LoopDepth
		}
	}
	if maxDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", maxDepth)
	}
	if c.Entry.LoopDepth != 0 {
		t.Errorf("entry depth = %d, want 0", c.Entry.LoopDepth)
	}
	// The loop introduces a cycle: some block must appear as its own
	// ancestor, i.e. there is a back edge (succ with smaller-or-equal
	// RPO index).
	back := false
	for _, bl := range c.Blocks {
		for _, s := range bl.Succs {
			if s.Index <= bl.Index && s != c.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("loop produced no back edge")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	c := BuildCFG(parseBody(t, `
for {
	if a() {
		break
	}
	if b() {
		continue
	}
	work()
}
return nil`))
	// break must reach the return block (the only path into exit goes
	// through the statement after the loop); an infinite for without
	// break would make return unreachable.
	foundReturn := false
	for _, bl := range c.Blocks {
		for _, n := range bl.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				foundReturn = true
			}
		}
	}
	if !foundReturn {
		t.Errorf("return after break-able loop should be reachable")
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	// With a default clause the switch head must NOT flow directly to
	// the after-block.
	c := BuildCFG(parseBody(t, `
switch k() {
case 1:
	a()
default:
	b()
}
return nil`))
	for _, s := range c.Entry.Succs {
		for _, n := range s.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				t.Errorf("switch with default must not skip straight to after-block")
			}
		}
	}
}

func TestCFGSelectCtxDone(t *testing.T) {
	c := BuildCFG(parseBody(t, `
select {
case ch <- v:
	a()
case <-ctx.Done():
	return ctx.Err()
}
return nil`))
	// Two comm clauses: entry has two successors.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("entry successors = %d, want 2", len(c.Entry.Succs))
	}
}

// TestForwardMustReach exercises the dataflow framework with a tiny
// must-analysis: "a call to mark() must-reaches this block". On a
// diamond where only one branch calls mark(), the join must drop the
// fact; when both branches call it, the join must keep it.
func TestForwardMustReach(t *testing.T) {
	run := func(src string) bool {
		c := BuildCFG(parseBody(t, src))
		marks := func(bl *Block) bool {
			found := false
			for _, n := range bl.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
							found = true
						}
					}
					return true
				})
			}
			return found
		}
		in := Forward(c, false,
			func(a, b bool) bool { return a && b },
			func(bl *Block, f bool) bool { return f || marks(bl) },
			func(a, b bool) bool { return a == b },
		)
		return in[c.Exit]
	}

	if run("if cond() {\n mark()\n}\nreturn nil") {
		t.Errorf("mark() on one branch only must not must-reach exit")
	}
	if !run("if cond() {\n mark()\n} else {\n mark()\n}\nreturn nil") {
		t.Errorf("mark() on both branches must must-reach exit")
	}
	if !run("mark()\nfor i := 0; i < n; i++ {\n work()\n}\nreturn nil") {
		t.Errorf("mark() before a loop must survive the loop join")
	}
}

// TestForwardMayReach checks the dual may-analysis (meet = OR) used by
// phaseorder's forbids checks.
func TestForwardMayReach(t *testing.T) {
	c := BuildCFG(parseBody(t, "if cond() {\n mark()\n}\nreturn nil"))
	marks := func(bl *Block) bool {
		for _, n := range bl.Nodes {
			ok := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, isCall := x.(*ast.CallExpr); isCall {
					if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "mark" {
						ok = true
					}
				}
				return true
			})
			if ok {
				return true
			}
		}
		return false
	}
	in := Forward(c, false,
		func(a, b bool) bool { return a || b },
		func(bl *Block, f bool) bool { return f || marks(bl) },
		func(a, b bool) bool { return a == b },
	)
	if !in[c.Exit] {
		t.Errorf("mark() on one branch should may-reach exit")
	}
}
