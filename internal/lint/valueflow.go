package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the SSA-lite value-flow layer under the numerical-safety
// analyzers (aliasguard, shapecheck): per-function reaching definitions
// computed over the CFG in cfg.go with the generic Forward solver, plus
// def-use chains resolved at every identifier use. The construction is
// "SSA-lite" rather than SSA proper: instead of renaming variables and
// materializing phi nodes, the reaching-definition sets themselves play
// the role of phis — at a join point the set of definitions reaching a
// use is the union over predecessors, which is exactly the information a
// phi node would carry, without rewriting the AST.
//
// Precision notes, deliberate and documented:
//
//   - function literals are separate scopes (as everywhere in this
//     suite); a variable assigned inside a nested literal is demoted to
//     a single "captured" definition that reaches every use and is never
//     killed, as is any variable whose address is taken;
//   - variables bound by a type switch have no tracked definitions
//     (go/types records them in Info.Implicits, which the loader does
//     not collect); their uses resolve to an empty definition set and
//     consumers treat them as unknown.

// VFKind classifies one definition site.
type VFKind int

const (
	// VFParam is a parameter, receiver, or named result: the value is
	// established at function entry.
	VFParam VFKind = iota
	// VFAssign is `x = rhs` or `x := rhs`; RHS holds the assigned
	// expression (for a multi-value assignment, the call, with
	// ResultIndex selecting the component).
	VFAssign
	// VFCompound is `x op= rhs` or `x++`/`x--`: the new value derives
	// from the old one plus RHS (nil for inc/dec).
	VFCompound
	// VFDecl is `var x T` with no initializer: the zero value.
	VFDecl
	// VFRange is a range-statement key or value variable; RHS holds the
	// ranged operand.
	VFRange
	// VFCaptured marks a variable mutated through a closure or a taken
	// address: its value is unknown and the definition is never killed.
	VFCaptured
)

// A VFDef is one definition site of a local variable.
type VFDef struct {
	ID   int
	Obj  *types.Var
	Kind VFKind
	// RHS is the defining expression (see VFKind); nil when the value is
	// not expressible (params, zero-value decls, captures).
	RHS ast.Expr
	// ResultIndex selects the tuple component when RHS is a multi-value
	// call; -1 otherwise.
	ResultIndex int
	Pos         token.Pos
}

// A ValueFlow holds the reaching-definition analysis of one function
// scope: every definition site of its local variables and, for every
// identifier use, the set of definitions that may reach it.
type ValueFlow struct {
	Pkg   *Package
	Scope funcScope

	defs  []*VFDef
	byObj map[*types.Var][]*VFDef
	uses  map[*ast.Ident][]*VFDef
	local map[*types.Var]bool
}

// buildValueFlow runs the reaching-definition analysis over one function
// scope.
func buildValueFlow(pkg *Package, sc funcScope) *ValueFlow {
	vf := &ValueFlow{
		Pkg:   pkg,
		Scope: sc,
		byObj: make(map[*types.Var][]*VFDef),
		uses:  make(map[*ast.Ident][]*VFDef),
		local: make(map[*types.Var]bool),
	}
	vf.collectLocals()
	captured := vf.findCaptured()

	c := BuildCFG(sc.body)

	// Enumerate definitions block-by-block so every def is attached to
	// the CFG node it occurs in; defsByNode drives the transfer function.
	entryDefs := vf.entryDefs(captured)
	defsByNode := make(map[ast.Node][]*VFDef)
	for _, bl := range c.Blocks {
		for _, n := range bl.Nodes {
			if ds := vf.defsInNode(n); len(ds) > 0 {
				defsByNode[n] = ds
			}
		}
	}

	// Reaching-definition dataflow: the fact is the set of definition
	// IDs live at a point; meet is set union (the phi), a definition
	// kills the variable's other definitions except never-killed
	// captures.
	entry := make(vfFact, len(entryDefs))
	for _, d := range entryDefs {
		entry[d.ID] = true
	}
	in := Forward(c, entry, vfMeet,
		func(bl *Block, f vfFact) vfFact {
			g := f.clone()
			for _, n := range bl.Nodes {
				for _, d := range defsByNode[n] {
					vf.apply(g, d)
				}
			}
			return g
		},
		vfEqual,
	)

	// Use-recording pass: re-walk each block with its IN fact, recording
	// the reaching set at every identifier use before applying the
	// node's own definitions (a use on the right-hand side of `x = x+1`
	// sees the old definitions).
	for _, bl := range c.Blocks {
		f, ok := in[bl]
		if !ok {
			continue
		}
		g := f.clone()
		for _, n := range bl.Nodes {
			ds := defsByNode[n]
			defIdents := make(map[*ast.Ident]bool, len(ds))
			for _, d := range ds {
				if id := defIdentOf(n, d); id != nil {
					defIdents[id] = true
				}
			}
			inspectShallow(n, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok || defIdents[id] {
					return true
				}
				obj, ok := vf.Pkg.Info.Uses[id].(*types.Var)
				if !ok || !vf.local[obj] {
					return true
				}
				var reach []*VFDef
				for _, d := range vf.byObj[obj] {
					if g[d.ID] {
						reach = append(reach, d)
					}
				}
				vf.uses[id] = reach
				return true
			})
			for _, d := range ds {
				vf.apply(g, d)
			}
		}
	}
	return vf
}

// ReachingDefs returns the definitions that may reach an identifier
// use, or nil when the identifier is not a use of a tracked local.
func (vf *ValueFlow) ReachingDefs(id *ast.Ident) []*VFDef { return vf.uses[id] }

// DefsOf lists every definition site of a tracked local.
func (vf *ValueFlow) DefsOf(obj *types.Var) []*VFDef { return vf.byObj[obj] }

// IsLocal reports whether the variable is tracked by this scope's
// analysis (declared by it, including parameters and named results).
func (vf *ValueFlow) IsLocal(obj *types.Var) bool { return vf.local[obj] }

// vfFact is the reaching-definition set, keyed by VFDef.ID.
type vfFact map[int]bool

func (f vfFact) clone() vfFact {
	g := make(vfFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func vfMeet(a, b vfFact) vfFact {
	out := a.clone()
	for k, v := range b {
		if v {
			out[k] = true
		}
	}
	return out
}

func vfEqual(a, b vfFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// apply installs one definition into the fact: gen the def, kill the
// variable's other (non-captured) definitions.
func (vf *ValueFlow) apply(f vfFact, d *VFDef) {
	for _, other := range vf.byObj[d.Obj] {
		if other != d && other.Kind != VFCaptured {
			delete(f, other.ID)
		}
	}
	f[d.ID] = true
}

// collectLocals registers the variables this scope defines: parameters,
// the receiver, named results, and every ident the body's statements
// declare (Info.Defs), excluding declarations inside nested literals.
func (vf *ValueFlow) collectLocals() {
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj, ok := vf.Pkg.Info.Defs[name].(*types.Var); ok {
					vf.local[obj] = true
				}
			}
		}
	}
	if vf.Scope.decl != nil {
		addField(vf.Scope.decl.Recv)
	}
	addField(vf.Scope.typ.Params)
	addField(vf.Scope.typ.Results)
	inspectShallow(vf.Scope.body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := vf.Pkg.Info.Defs[id].(*types.Var); ok && !obj.IsField() {
				vf.local[obj] = true
			}
		}
		return true
	})
}

// findCaptured marks the tracked variables whose value can change
// through channels this analysis does not model: assignment inside a
// nested function literal, or a taken address.
func (vf *ValueFlow) findCaptured() map[*types.Var]bool {
	captured := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj, ok := vf.Pkg.Info.Uses[id].(*types.Var); ok && vf.local[obj] {
				captured[obj] = true
			}
			if obj, ok := vf.Pkg.Info.Defs[id].(*types.Var); ok && vf.local[obj] {
				captured[obj] = true
			}
		}
	}
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(x.Body, walk)
			depth--
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		case *ast.AssignStmt:
			if depth > 0 {
				for _, lhs := range x.Lhs {
					mark(lhs)
				}
			}
		case *ast.IncDecStmt:
			if depth > 0 {
				mark(x.X)
			}
		case *ast.RangeStmt:
			if depth > 0 {
				if x.Key != nil {
					mark(x.Key)
				}
				if x.Value != nil {
					mark(x.Value)
				}
			}
		}
		return true
	}
	ast.Inspect(vf.Scope.body, walk)
	return captured
}

// entryDefs creates the definitions live at function entry: one VFParam
// per parameter/receiver/result and one never-killed VFCaptured per
// captured variable.
func (vf *ValueFlow) entryDefs(captured map[*types.Var]bool) []*VFDef {
	var out []*VFDef
	add := func(obj *types.Var, kind VFKind, pos token.Pos) {
		d := &VFDef{ID: len(vf.defs), Obj: obj, Kind: kind, ResultIndex: -1, Pos: pos}
		vf.defs = append(vf.defs, d)
		vf.byObj[obj] = append(vf.byObj[obj], d)
		out = append(out, d)
	}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj, ok := vf.Pkg.Info.Defs[name].(*types.Var); ok {
					add(obj, VFParam, name.Pos())
				}
			}
		}
	}
	if vf.Scope.decl != nil {
		addField(vf.Scope.decl.Recv)
	}
	addField(vf.Scope.typ.Params)
	addField(vf.Scope.typ.Results)
	// Deterministic order for the captured set.
	var caps []*types.Var
	for obj := range captured {
		caps = append(caps, obj)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Pos() < caps[j].Pos() })
	for _, obj := range caps {
		add(obj, VFCaptured, obj.Pos())
	}
	return out
}

// defsInNode extracts the definitions one CFG node performs, in
// evaluation order. LabeledStmt is skipped: the CFG lists the labeled
// statement itself as a separate node.
func (vf *ValueFlow) defsInNode(n ast.Node) []*VFDef {
	var out []*VFDef
	add := func(id *ast.Ident, kind VFKind, rhs ast.Expr, resultIndex int) {
		var obj *types.Var
		if o, ok := vf.Pkg.Info.Defs[id].(*types.Var); ok {
			obj = o
		} else if o, ok := vf.Pkg.Info.Uses[id].(*types.Var); ok {
			obj = o
		}
		if obj == nil || !vf.local[obj] {
			return
		}
		d := &VFDef{ID: len(vf.defs), Obj: obj, Kind: kind, RHS: rhs, ResultIndex: resultIndex, Pos: id.Pos()}
		vf.defs = append(vf.defs, d)
		vf.byObj[obj] = append(vf.byObj[obj], d)
		out = append(out, d)
	}
	switch st := n.(type) {
	case *ast.LabeledStmt:
		return nil
	case *ast.AssignStmt:
		vf.assignDefs(st, add)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
			add(id, VFCompound, nil, -1)
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == 0:
					add(name, VFDecl, nil, -1)
				case len(vs.Values) == len(vs.Names):
					add(name, VFAssign, vs.Values[i], -1)
				default: // multi-value call
					add(name, VFAssign, vs.Values[0], i)
				}
			}
		}
	default:
		// Range key/value definitions attach to the range operand node —
		// the head node of the loop in the CFG — so the body block's IN
		// fact includes them.
		vf.rangeDefs(n, add)
	}
	return out
}

// assignDefs extracts the definitions of one assignment statement.
func (vf *ValueFlow) assignDefs(st *ast.AssignStmt, add func(*ast.Ident, VFKind, ast.Expr, int)) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		tuple := len(st.Rhs) == 1 && len(st.Lhs) > 1
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if tuple {
				add(id, VFAssign, st.Rhs[0], i)
			} else {
				add(id, VFAssign, st.Rhs[i], -1)
			}
		}
	default: // compound op=
		if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
			add(id, VFCompound, st.Rhs[0], -1)
		}
	}
}

// rangeDefs matches a CFG head node against its enclosing RangeStmt.
// The CFG stores st.X as the head node; the key/value idents live on
// the RangeStmt, which is not itself a node, so the builder walks the
// scope's range statements and attaches their definitions to X.
func (vf *ValueFlow) rangeDefs(n ast.Node, add func(*ast.Ident, VFKind, ast.Expr, int)) {
	e, ok := n.(ast.Expr)
	if !ok {
		return
	}
	inspectShallow(vf.Scope.body, func(x ast.Node) bool {
		rs, ok := x.(*ast.RangeStmt)
		if !ok || rs.X != e {
			return true
		}
		if id, ok := identOrNil(rs.Key); ok {
			add(id, VFRange, rs.X, -1)
		}
		if id, ok := identOrNil(rs.Value); ok {
			add(id, VFRange, rs.X, -1)
		}
		return true
	})
}

func identOrNil(e ast.Expr) (*ast.Ident, bool) {
	if e == nil {
		return nil, false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	return id, true
}

// defIdentOf finds the defining ident of a definition within its node,
// so the use-recording pass can skip it (the LHS of `x = ...` is not a
// use). Compound definitions return nil: `x += e` reads x.
func defIdentOf(n ast.Node, d *VFDef) *ast.Ident {
	if d.Kind == VFCompound || d.Kind == VFRange {
		return nil
	}
	var found *ast.Ident
	inspectShallow(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Pos() == d.Pos {
			found = id
			return false
		}
		return found == nil
	})
	return found
}
