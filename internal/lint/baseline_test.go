package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testBaseline(t *testing.T, content string) *Baseline {
	t.Helper()
	path := filepath.Join(t.TempDir(), ".simlint-baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBaselineCarriesFindings checks the filter direction: a finding
// matching a baseline entry (by file, analyzer, and message — not line)
// is dropped from the report; everything else survives.
func TestBaselineCarriesFindings(t *testing.T) {
	b := testBaseline(t, `{
		"findings": [
			{"file": "internal/fem/loads.go", "analyzer": "ctxflow",
			 "msg": "carried message", "reason": "accepted debt"}
		],
		"waivers": []
	}`)
	res := Result{Findings: []Finding{
		{Pos: token.Position{Filename: "/mod/internal/fem/loads.go", Line: 99},
			Analyzer: "ctxflow", Msg: "carried message"},
		{Pos: token.Position{Filename: "/mod/internal/fem/loads.go", Line: 12},
			Analyzer: "ctxflow", Msg: "a different message"},
	}}
	out := b.Apply("/mod", res, nil)
	if len(out) != 1 || out[0].Msg != "a different message" {
		t.Fatalf("Apply = %v, want only the uncarried finding", out)
	}
}

// TestBaselineFlagsUnregisteredWaiver checks the other direction: an
// in-source //lint:ignore with no baseline registration is itself a
// finding, so suppressions cannot bypass review.
func TestBaselineFlagsUnregisteredWaiver(t *testing.T) {
	b := testBaseline(t, `{
		"findings": [],
		"waivers": [
			{"file": "internal/service/admin.go", "analyzer": "errwrap", "reason": "registered"}
		]
	}`)
	res := Result{Waivers: []WaiverUse{
		{Pos: token.Position{Filename: "/mod/internal/service/admin.go", Line: 10},
			Analyzer: "errwrap", Reason: "registered"},
		{Pos: token.Position{Filename: "/mod/internal/par/pool.go", Line: 5},
			Analyzer: "hotalloc", Reason: "sneaky"},
	}}
	out := b.Apply("/mod", res, nil)
	if len(out) != 1 || out[0].Analyzer != "baseline" ||
		!strings.Contains(out[0].Msg, "//lint:ignore hotalloc is not registered") {
		t.Fatalf("Apply = %v, want one unregistered-waiver finding", out)
	}
	if out[0].Pos.Filename != "/mod/internal/par/pool.go" {
		t.Errorf("unregistered waiver reported at %s, want the waiver site", out[0].Pos.Filename)
	}
}

// TestBaselineFlagsStaleEntries: entries matching nothing in the tree
// are reported, so the baseline can only shrink honestly.
func TestBaselineFlagsStaleEntries(t *testing.T) {
	b := testBaseline(t, `{
		"findings": [
			{"file": "internal/gone.go", "analyzer": "ctxflow", "msg": "fixed long ago", "reason": "old"}
		],
		"waivers": [
			{"file": "internal/gone.go", "analyzer": "errwrap", "reason": "old"}
		]
	}`)
	out := b.Apply("/mod", Result{}, nil)
	if len(out) != 2 {
		t.Fatalf("Apply = %v, want two staleness findings", out)
	}
	for _, f := range out {
		if f.Analyzer != "baseline" || !strings.Contains(f.Msg, "stale baseline") {
			t.Errorf("finding %s is not a staleness diagnostic", f)
		}
	}
}

// TestBaselineMissingFileIsEmpty: no baseline file means nothing is
// carried and no waivers are allowed — the strictest configuration, not
// an error.
func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	res := Result{
		Findings: []Finding{{Pos: token.Position{Filename: "/mod/a.go"}, Analyzer: "ctxflow", Msg: "m"}},
		Waivers:  []WaiverUse{{Pos: token.Position{Filename: "/mod/a.go"}, Analyzer: "errwrap", Reason: "r"}},
	}
	out := b.Apply("/mod", res, nil)
	if len(out) != 2 {
		t.Fatalf("Apply = %v, want the finding plus the unregistered waiver", out)
	}
}

// TestCommittedBaselineRetired pins the debt register at zero: the
// last carried findings and waivers were burned down when the suite
// went interprocedural, and the file itself is gone. Anyone reviving
// it must consciously re-open the register.
func TestCommittedBaselineRetired(t *testing.T) {
	b, err := LoadBaseline(filepath.Join("..", "..", ".simlint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 || len(b.Waivers) != 0 {
		t.Fatalf("committed baseline carries %d findings, %d waivers; the register was retired at zero",
			len(b.Findings), len(b.Waivers))
	}
}
