// Package render produces the reproduction's analogue of the paper's
// visualizations: grayscale MR slices (Figure 4 panels), colored
// segmentation overlays, deformation-magnitude heat maps and
// displacement arrows (the color coding and blue arrows of Figure 5),
// written as portable pixmap (PPM) images with no external
// dependencies.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/volume"
)

// RGB is an 8-bit color.
type RGB struct{ R, G, B uint8 }

// Image is a simple RGB raster.
type Image struct {
	W, H int
	Pix  []RGB
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y); black out of bounds.
func (im *Image) At(x, y int) RGB {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return RGB{}
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped.
func (im *Image) Set(x, y int, c RGB) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = c
}

// WritePPM serializes the image as a binary PPM (P6).
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H)
	for _, p := range im.Pix {
		bw.WriteByte(p.R)
		bw.WriteByte(p.G)
		bw.WriteByte(p.B)
	}
	return bw.Flush()
}

// SavePPM writes the image to the named file.
func (im *Image) SavePPM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		return err
	}
	return f.Close()
}

// Axis selects the slicing plane.
type Axis int

const (
	// AxisZ slices axially: image axes are (x, y).
	AxisZ Axis = iota
	// AxisY slices coronally: image axes are (x, z).
	AxisY
	// AxisX slices sagittally: image axes are (y, z).
	AxisX
)

// sliceDims returns the image dimensions for a slice of grid g.
func sliceDims(g volume.Grid, axis Axis) (w, h int) {
	switch axis {
	case AxisZ:
		return g.NX, g.NY
	case AxisY:
		return g.NX, g.NZ
	default:
		return g.NY, g.NZ
	}
}

// sliceVoxel maps image coordinates to voxel coordinates.
func sliceVoxel(axis Axis, x, y, index int) (i, j, k int) {
	switch axis {
	case AxisZ:
		return x, y, index
	case AxisY:
		return x, index, y
	default:
		return index, x, y
	}
}

// GraySlice renders one slice of a scalar volume windowed to [lo, hi].
func GraySlice(s *volume.Scalar, axis Axis, index int, lo, hi float64) (*Image, error) {
	g := s.Grid
	max := []int{g.NZ, g.NY, g.NX}[axis]
	if index < 0 || index >= max {
		return nil, fmt.Errorf("render: slice %d out of range [0,%d)", index, max)
	}
	if hi <= lo {
		hi = lo + 1
	}
	w, h := sliceDims(g, axis)
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i, j, k := sliceVoxel(axis, x, y, index)
			v := (s.At(i, j, k) - lo) / (hi - lo)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			b := uint8(v * 255)
			im.Set(x, y, RGB{b, b, b})
		}
	}
	return im, nil
}

// TissueColor returns the display color of a tissue label, roughly
// following the SPL's conventional palette.
func TissueColor(l volume.Label) RGB {
	switch l {
	case volume.LabelSkin:
		return RGB{255, 220, 177}
	case volume.LabelSkull:
		return RGB{230, 230, 230}
	case volume.LabelCSF:
		return RGB{80, 160, 255}
	case volume.LabelBrain:
		return RGB{200, 120, 120}
	case volume.LabelVentricle:
		return RGB{40, 80, 255}
	case volume.LabelTumor:
		return RGB{90, 220, 90}
	case volume.LabelFalx:
		return RGB{255, 255, 100}
	case volume.LabelResection:
		return RGB{160, 60, 200}
	default:
		return RGB{}
	}
}

// OverlayLabels alpha-blends a segmentation slice onto the image.
func OverlayLabels(im *Image, l *volume.Labels, axis Axis, index int, alpha float64) error {
	w, h := sliceDims(l.Grid, axis)
	if w != im.W || h != im.H {
		return fmt.Errorf("render: overlay %dx%d on image %dx%d", w, h, im.W, im.H)
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i, j, k := sliceVoxel(axis, x, y, index)
			lab := l.At(i, j, k)
			if lab == volume.LabelBackground {
				continue
			}
			c := TissueColor(lab)
			p := im.At(x, y)
			im.Set(x, y, RGB{
				blend(p.R, c.R, alpha),
				blend(p.G, c.G, alpha),
				blend(p.B, c.B, alpha),
			})
		}
	}
	return nil
}

func blend(a, b uint8, alpha float64) uint8 {
	return uint8(float64(a)*(1-alpha) + float64(b)*alpha)
}

// Heat maps t in [0,1] to a blue-to-red color scale (the magnitude
// coloring of the paper's Figure 5).
func Heat(t float64) RGB {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Blue (0) -> cyan -> green -> yellow -> red (1).
	r := clamp01(math.Min(4*t-2, 1))
	g := clamp01(math.Min(4*t, 4-4*t))
	b := clamp01(math.Min(2-4*t, 1))
	return RGB{uint8(r * 255), uint8(g * 255), uint8(b * 255)}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// OverlayFieldMagnitude blends a deformation-magnitude heat map onto
// the image wherever the displacement exceeds threshold (mm). maxMag
// sets the red end of the scale; <= 0 uses the field maximum.
func OverlayFieldMagnitude(im *Image, f *volume.Field, axis Axis, index int,
	maxMag, threshold, alpha float64) error {
	w, h := sliceDims(f.Grid, axis)
	if w != im.W || h != im.H {
		return fmt.Errorf("render: overlay %dx%d on image %dx%d", w, h, im.W, im.H)
	}
	if maxMag <= 0 {
		maxMag = f.MaxMagnitude()
		if maxMag == 0 {
			maxMag = 1
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i, j, k := sliceVoxel(axis, x, y, index)
			m := f.At(i, j, k).Norm()
			if m <= threshold {
				continue
			}
			c := Heat(m / maxMag)
			p := im.At(x, y)
			im.Set(x, y, RGB{
				blend(p.R, c.R, alpha),
				blend(p.G, c.G, alpha),
				blend(p.B, c.B, alpha),
			})
		}
	}
	return nil
}

// DrawLine draws a 1-pixel line with Bresenham's algorithm.
func (im *Image) DrawLine(x0, y0, x1, y1 int, c RGB) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		im.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DrawArrows draws the in-plane projection of the displacement field as
// blue arrows on a stride grid — the paper's Figure 5 annotation. scale
// multiplies displacements (in voxels) for visibility; arrows shorter
// than minLen voxels are skipped.
func DrawArrows(im *Image, f *volume.Field, axis Axis, index, stride int,
	scale, minLen float64, c RGB) error {
	w, h := sliceDims(f.Grid, axis)
	if w != im.W || h != im.H {
		return fmt.Errorf("render: arrows %dx%d on image %dx%d", w, h, im.W, im.H)
	}
	if stride < 1 {
		stride = 1
	}
	for y := 0; y < h; y += stride {
		for x := 0; x < w; x += stride {
			i, j, k := sliceVoxel(axis, x, y, index)
			d := f.At(i, j, k)
			// Project onto the slice plane, converting mm to voxels.
			var ux, uy float64
			sp := f.Grid.Spacing
			switch axis {
			case AxisZ:
				ux, uy = d.X/sp.X, d.Y/sp.Y
			case AxisY:
				ux, uy = d.X/sp.X, d.Z/sp.Z
			default:
				ux, uy = d.Y/sp.Y, d.Z/sp.Z
			}
			ux *= scale
			uy *= scale
			if math.Hypot(ux, uy) < minLen {
				continue
			}
			x1 := x + int(math.Round(ux))
			y1 := y + int(math.Round(uy))
			im.DrawLine(x, y, x1, y1, c)
			// Arrowhead: a short back-stroke.
			im.Set(x1, y1, RGB{255, 255, 255})
		}
	}
	return nil
}
