package render

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

func TestImageSetAt(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, RGB{10, 20, 30})
	if got := im.At(1, 2); got != (RGB{10, 20, 30}) {
		t.Errorf("At = %v", got)
	}
	if got := im.At(-1, 0); got != (RGB{}) {
		t.Errorf("out-of-bounds At = %v", got)
	}
	im.Set(99, 99, RGB{1, 1, 1}) // must not panic
}

func TestWritePPM(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, RGB{255, 0, 0})
	im.Set(1, 0, RGB{0, 255, 0})
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("P6\n2 1\n255\n"), 255, 0, 0, 0, 255, 0)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("PPM = %q", buf.Bytes())
	}
}

func TestSavePPM(t *testing.T) {
	im := NewImage(2, 2)
	path := filepath.Join(t.TempDir(), "x.ppm")
	if err := im.SavePPM(path); err != nil {
		t.Fatal(err)
	}
}

func testScalar() *volume.Scalar {
	g := volume.NewGrid(4, 3, 2, 1)
	s := volume.NewScalar(g)
	for i := range s.Data {
		s.Data[i] = float32(i)
	}
	return s
}

func TestGraySliceAxes(t *testing.T) {
	s := testScalar()
	for _, tc := range []struct {
		axis Axis
		w, h int
	}{
		{AxisZ, 4, 3},
		{AxisY, 4, 2},
		{AxisX, 3, 2},
	} {
		im, err := GraySlice(s, tc.axis, 0, 0, 23)
		if err != nil {
			t.Fatal(err)
		}
		if im.W != tc.w || im.H != tc.h {
			t.Errorf("axis %d: image %dx%d, want %dx%d", tc.axis, im.W, im.H, tc.w, tc.h)
		}
	}
}

func TestGraySliceWindow(t *testing.T) {
	s := testScalar()
	im, err := GraySlice(s, AxisZ, 0, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Voxel (0,0,0)=0 -> black, voxel (3,2,0)=11 -> mid-gray.
	if im.At(0, 0) != (RGB{0, 0, 0}) {
		t.Errorf("pixel(0,0) = %v", im.At(0, 0))
	}
	p := im.At(3, 2)
	if p.R < 100 || p.R > 150 || p.R != p.G || p.G != p.B {
		t.Errorf("pixel(3,2) = %v, want mid-gray", p)
	}
	if _, err := GraySlice(s, AxisZ, 5, 0, 1); err == nil {
		t.Error("out-of-range slice accepted")
	}
}

func TestHeatEndpoints(t *testing.T) {
	if c := Heat(0); c.B < 200 || c.R > 50 {
		t.Errorf("Heat(0) = %v, want blue", c)
	}
	if c := Heat(1); c.R < 200 || c.B > 50 {
		t.Errorf("Heat(1) = %v, want red", c)
	}
	if c := Heat(0.5); c.G < 200 {
		t.Errorf("Heat(0.5) = %v, want green-ish", c)
	}
	// Clamping.
	if Heat(-5) != Heat(0) || Heat(7) != Heat(1) {
		t.Error("Heat does not clamp")
	}
}

func TestOverlayLabels(t *testing.T) {
	g := volume.NewGrid(4, 3, 2, 1)
	l := volume.NewLabels(g)
	l.Set(1, 1, 0, volume.LabelTumor)
	im := NewImage(4, 3)
	if err := OverlayLabels(im, l, AxisZ, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if im.At(1, 1) != TissueColor(volume.LabelTumor) {
		t.Errorf("tumor pixel = %v", im.At(1, 1))
	}
	// Background stays untouched.
	if im.At(0, 0) != (RGB{}) {
		t.Error("background was painted")
	}
	// Shape mismatch rejected.
	if err := OverlayLabels(NewImage(2, 2), l, AxisZ, 0, 1); err == nil {
		t.Error("mismatched overlay accepted")
	}
}

func TestOverlayFieldMagnitude(t *testing.T) {
	g := volume.NewGrid(4, 4, 1, 1)
	f := volume.NewField(g)
	f.Set(2, 2, 0, geom.V(5, 0, 0))
	im := NewImage(4, 4)
	if err := OverlayFieldMagnitude(im, f, AxisZ, 0, 5, 0.1, 1.0); err != nil {
		t.Fatal(err)
	}
	// Displaced voxel gets the hot end of the scale.
	if p := im.At(2, 2); p.R < 200 {
		t.Errorf("displaced pixel = %v, want red", p)
	}
	// Zero-displacement voxels below threshold stay black.
	if im.At(0, 0) != (RGB{}) {
		t.Error("static pixel was painted")
	}
}

func TestDrawLine(t *testing.T) {
	im := NewImage(5, 5)
	c := RGB{255, 255, 255}
	im.DrawLine(0, 0, 4, 4, c)
	for i := 0; i < 5; i++ {
		if im.At(i, i) != c {
			t.Errorf("diagonal pixel (%d,%d) not drawn", i, i)
		}
	}
	im2 := NewImage(5, 5)
	im2.DrawLine(4, 2, 0, 2, c)
	for i := 0; i < 5; i++ {
		if im2.At(i, 2) != c {
			t.Errorf("horizontal pixel (%d,2) not drawn", i)
		}
	}
}

func TestDrawArrows(t *testing.T) {
	g := volume.NewGrid(16, 16, 1, 1)
	f := volume.NewField(g)
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			f.Set(i, j, 0, geom.V(4, 0, 0))
		}
	}
	im := NewImage(16, 16)
	blue := RGB{0, 0, 255}
	if err := DrawArrows(im, f, AxisZ, 0, 8, 1, 1, blue); err != nil {
		t.Fatal(err)
	}
	// Arrow starts at (0,0) heading +x: pixels along the shaft are blue.
	if im.At(1, 0) != blue {
		t.Errorf("arrow shaft missing: %v", im.At(1, 0))
	}
	// No arrows between stride points.
	if im.At(1, 3) != (RGB{}) {
		t.Error("unexpected drawing off the stride grid")
	}
	if err := DrawArrows(NewImage(2, 2), f, AxisZ, 0, 1, 1, 1, blue); err == nil {
		t.Error("mismatched arrows accepted")
	}
}
