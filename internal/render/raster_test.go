package render

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/phantom"
	"repro/internal/volume"
)

// brainTriMesh builds a phantom brain surface for rendering tests.
func brainTriMesh(t *testing.T, n int) *mesh.TriMesh {
	t.Helper()
	p := phantom.DefaultParams(n)
	g := volume.NewGrid(n, n, n, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	m, err := mesh.FromLabels(l, mesh.Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The whole head: a solid closed surface (the brain-only surface has
	// a crack at the falx midplane).
	s, err := m.ExtractSurface(func(lab volume.Label) bool { return lab != volume.LabelBackground })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRenderSurfaceProducesPixels(t *testing.T) {
	s := brainTriMesh(t, 24)
	im, err := RenderSurface(s, nil, Camera{Dir: geom.V(0, -1, 0), Up: geom.V(0, 0, 1)}, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	lit := 0
	for _, p := range im.Pix {
		if p != (RGB{}) {
			lit++
		}
	}
	// The sphere-ish brain should cover a solid fraction of the frame.
	if frac := float64(lit) / float64(len(im.Pix)); frac < 0.2 || frac > 0.95 {
		t.Errorf("lit fraction = %v, want a solid silhouette", frac)
	}
	// Background stays black, center of the silhouette is lit.
	if im.At(0, 0) != (RGB{}) {
		t.Error("corner pixel lit")
	}
	if im.At(32, 32) == (RGB{}) {
		t.Error("center pixel unlit")
	}
}

func TestRenderSurfaceVertexColors(t *testing.T) {
	s := brainTriMesh(t, 24)
	// All vertices hot red: lit pixels should be predominantly red.
	colors := make([]RGB, s.NumVerts())
	for i := range colors {
		colors[i] = RGB{255, 0, 0}
	}
	im, err := RenderSurface(s, colors, Camera{Dir: geom.V(1, 0, 0)}, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range im.Pix {
		if p == (RGB{}) {
			continue
		}
		if p.G != 0 || p.B != 0 || p.R == 0 {
			t.Fatalf("lit pixel %v is not a shade of red", p)
		}
	}
}

func TestRenderSurfaceZBuffer(t *testing.T) {
	// Two parallel triangles; the nearer one must win.
	s := &mesh.TriMesh{
		Verts: []geom.Vec3{
			// Far triangle (z = 0), large.
			{X: -10, Y: -10, Z: 0}, {X: 10, Y: -10, Z: 0}, {X: 0, Y: 10, Z: 0},
			// Near triangle (z = 5, closer to a camera looking along -z), small.
			{X: -3, Y: -3, Z: 5}, {X: 3, Y: -3, Z: 5}, {X: 0, Y: 3, Z: 5},
		},
		Tris:   [][3]int32{{0, 1, 2}, {3, 4, 5}},
		NodeID: []int32{0, 1, 2, 3, 4, 5},
	}
	colors := []RGB{
		{0, 0, 255}, {0, 0, 255}, {0, 0, 255}, // far = blue
		{255, 0, 0}, {255, 0, 0}, {255, 0, 0}, // near = red
	}
	cam := Camera{Dir: geom.V(0, 0, -1), Up: geom.V(0, 1, 0), Scale: 2}
	im, err := RenderSurface(s, colors, cam, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the near (red) triangle: it occludes the far (blue) one.
	c := im.At(32, 27)
	if c.R == 0 || c.B != 0 {
		t.Errorf("near-triangle pixel = %v, want red (near wins)", c)
	}
	// Within the big triangle but outside the small one: blue.
	edge := im.At(46, 42)
	if edge.B == 0 || edge.R != 0 {
		t.Errorf("far-triangle pixel = %v, want blue", edge)
	}
}

func TestRenderSurfaceErrors(t *testing.T) {
	if _, err := RenderSurface(nil, nil, Camera{}, 10, 10); err == nil {
		t.Error("nil surface accepted")
	}
	s := brainTriMesh(t, 16)
	if _, err := RenderSurface(s, make([]RGB, 1), Camera{}, 10, 10); err == nil {
		t.Error("wrong color count accepted")
	}
	if _, err := RenderSurface(s, nil, Camera{}, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
}

func TestDisplacementColors(t *testing.T) {
	disp := []geom.Vec3{{}, {X: 5}, {X: 10}}
	colors := DisplacementColors(disp, 0)
	// Zero displacement -> cool (blue); max -> hot (red).
	if colors[0].B < 200 {
		t.Errorf("zero displacement color %v not blue", colors[0])
	}
	if colors[2].R < 200 {
		t.Errorf("max displacement color %v not red", colors[2])
	}
	// Explicit scale.
	c2 := DisplacementColors(disp, 100)
	if c2[2].R > 100 {
		t.Errorf("scaled color %v should be cool", c2[2])
	}
	// All-zero input does not divide by zero.
	_ = DisplacementColors([]geom.Vec3{{}, {}}, 0)
}

func TestCameraDegenerateBasis(t *testing.T) {
	// Up parallel to Dir must still produce an orthonormal basis.
	c := Camera{Dir: geom.V(0, 0, 1), Up: geom.V(0, 0, 1)}
	r, u, f := c.basis()
	if r.NormSq() == 0 || u.NormSq() == 0 {
		t.Fatal("degenerate basis")
	}
	for _, pair := range [][2]geom.Vec3{{r, u}, {u, f}, {r, f}} {
		if d := pair[0].Dot(pair[1]); d > 1e-9 || d < -1e-9 {
			t.Errorf("basis not orthogonal: %v", d)
		}
	}
}
