package render

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// Camera describes an orthographic view for surface rendering: the
// scene is projected along -Dir onto a plane spanned by Right and Up.
type Camera struct {
	// Dir is the viewing direction (from the eye toward the scene).
	Dir geom.Vec3
	// Up is the approximate up vector; it is re-orthogonalized.
	Up geom.Vec3
	// Scale is pixels per millimetre.
	Scale float64
}

// basis returns the orthonormal (right, up, forward) view basis.
func (c Camera) basis() (right, up, fwd geom.Vec3) {
	fwd = c.Dir.Normalized()
	if fwd.NormSq() == 0 {
		fwd = geom.V(0, 0, -1)
	}
	upGuess := c.Up
	if upGuess.NormSq() == 0 {
		upGuess = geom.V(0, 0, 1)
	}
	right = fwd.Cross(upGuess).Normalized()
	if right.NormSq() == 0 {
		// Up parallel to Dir: pick any perpendicular.
		right = fwd.Cross(geom.V(1, 0, 0)).Normalized()
		if right.NormSq() == 0 {
			right = fwd.Cross(geom.V(0, 1, 0)).Normalized()
		}
	}
	up = right.Cross(fwd)
	return
}

// RenderSurface rasterizes a triangle surface with flat Lambertian
// shading modulated by per-vertex colors (e.g. displacement-magnitude
// heat), using an orthographic camera and a z-buffer — the
// reproduction's version of the paper's Figure 5 surface rendering.
// vertexColors may be nil for a uniform gray surface.
func RenderSurface(s *mesh.TriMesh, vertexColors []RGB, cam Camera, w, h int) (*Image, error) {
	if s == nil || s.NumTris() == 0 {
		return nil, fmt.Errorf("render: empty surface")
	}
	if vertexColors != nil && len(vertexColors) != s.NumVerts() {
		return nil, fmt.Errorf("render: %d colors for %d vertices", len(vertexColors), s.NumVerts())
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("render: bad image size %dx%d", w, h)
	}
	right, up, fwd := cam.basis()
	center := s.Centroid()
	scale := cam.Scale
	if scale <= 0 {
		// Auto-fit: find the projected extent.
		maxR := 1e-9
		for _, v := range s.Verts {
			d := v.Sub(center)
			x := math.Abs(d.Dot(right))
			y := math.Abs(d.Dot(up))
			if x > maxR {
				maxR = x
			}
			if y > maxR {
				maxR = y
			}
		}
		scale = 0.45 * float64(minIntR(w, h)) / maxR
	}
	project := func(p geom.Vec3) (x, y, z float64) {
		d := p.Sub(center)
		return float64(w)/2 + scale*d.Dot(right),
			float64(h)/2 - scale*d.Dot(up),
			d.Dot(fwd)
	}

	im := NewImage(w, h)
	zbuf := make([]float64, w*h)
	for i := range zbuf {
		zbuf[i] = math.Inf(1)
	}
	light := fwd.Scale(-1) // headlight

	for _, tri := range s.Tris {
		p0, p1, p2 := s.Verts[tri[0]], s.Verts[tri[1]], s.Verts[tri[2]]
		normal := p1.Sub(p0).Cross(p2.Sub(p0)).Normalized()
		shade := normal.Dot(light)
		if shade < 0 {
			shade = -shade // double-sided
		}
		shade = 0.25 + 0.75*shade
		var base RGB
		if vertexColors != nil {
			// Average the vertex colors (flat shading).
			base = RGB{
				uint8((int(vertexColors[tri[0]].R) + int(vertexColors[tri[1]].R) + int(vertexColors[tri[2]].R)) / 3),
				uint8((int(vertexColors[tri[0]].G) + int(vertexColors[tri[1]].G) + int(vertexColors[tri[2]].G)) / 3),
				uint8((int(vertexColors[tri[0]].B) + int(vertexColors[tri[1]].B) + int(vertexColors[tri[2]].B)) / 3),
			}
		} else {
			base = RGB{200, 200, 200}
		}
		col := RGB{
			uint8(float64(base.R) * shade),
			uint8(float64(base.G) * shade),
			uint8(float64(base.B) * shade),
		}

		x0, y0, z0 := project(p0)
		x1, y1, z1 := project(p1)
		x2, y2, z2 := project(p2)
		minX := int(math.Floor(math.Min(x0, math.Min(x1, x2))))
		maxX := int(math.Ceil(math.Max(x0, math.Max(x1, x2))))
		minY := int(math.Floor(math.Min(y0, math.Min(y1, y2))))
		maxY := int(math.Ceil(math.Max(y0, math.Max(y1, y2))))
		if minX < 0 {
			minX = 0
		}
		if minY < 0 {
			minY = 0
		}
		if maxX >= w {
			maxX = w - 1
		}
		if maxY >= h {
			maxY = h - 1
		}
		area := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
		if math.Abs(area) < 1e-12 {
			continue
		}
		for py := minY; py <= maxY; py++ {
			for px := minX; px <= maxX; px++ {
				fx, fy := float64(px)+0.5, float64(py)+0.5
				w0 := ((x1-fx)*(y2-fy) - (x2-fx)*(y1-fy)) / area
				w1 := ((x2-fx)*(y0-fy) - (x0-fx)*(y2-fy)) / area
				w2 := 1 - w0 - w1
				if w0 < 0 || w1 < 0 || w2 < 0 {
					continue
				}
				z := w0*z0 + w1*z1 + w2*z2
				idx := py*w + px
				if z < zbuf[idx] {
					zbuf[idx] = z
					im.Pix[idx] = col
				}
			}
		}
	}
	return im, nil
}

func minIntR(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DisplacementColors maps per-vertex displacement vectors to heat
// colors scaled by maxMag (<= 0 uses the maximum magnitude present).
func DisplacementColors(disp []geom.Vec3, maxMag float64) []RGB {
	if maxMag <= 0 {
		for _, d := range disp {
			if m := d.Norm(); m > maxMag {
				maxMag = m
			}
		}
		if maxMag == 0 {
			maxMag = 1
		}
	}
	out := make([]RGB, len(disp))
	for i, d := range disp {
		out[i] = Heat(d.Norm() / maxMag)
	}
	return out
}
