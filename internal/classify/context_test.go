package classify

import (
	"context"
	"errors"
	"testing"

	"repro/internal/volume"
)

// twoClassSetup builds a one-channel volume and a classifier with two
// well-separated intensity classes.
func twoClassSetup() (*Classifier, []*volume.Scalar) {
	g := volume.NewGrid(16, 16, 16, 1)
	ch := volume.NewScalar(g)
	for i := range ch.Data {
		if i%2 == 0 {
			ch.Data[i] = 100
		}
	}
	cl := &Classifier{
		K: 1,
		Prototypes: []Prototype{
			{Features: []float64{0}, Label: volume.LabelCSF, VoxelIndex: 1},
			{Features: []float64{100}, Label: volume.LabelBrain, VoxelIndex: 0},
		},
		Workers: 2,
	}
	return cl, []*volume.Scalar{ch}
}

func TestClassifyContextCancelled(t *testing.T) {
	cl, channels := twoClassSetup()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.ClassifyContext(ctx, channels); !errors.Is(err, context.Canceled) {
		t.Errorf("ClassifyContext err = %v, want context.Canceled", err)
	}
	if _, err := cl.ClassifyKDContext(ctx, channels); !errors.Is(err, context.Canceled) {
		t.Errorf("ClassifyKDContext err = %v, want context.Canceled", err)
	}
}

func TestClassifyContextBackgroundMatchesClassify(t *testing.T) {
	cl, channels := twoClassSetup()
	a, err := cl.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.ClassifyContext(context.Background(), channels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("voxel %d: Classify=%d ClassifyContext=%d", i, a.Data[i], b.Data[i])
		}
	}
}
