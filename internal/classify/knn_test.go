package classify

import (
	"math/rand"
	"testing"

	"repro/internal/edt"
	"repro/internal/phantom"
	"repro/internal/volume"
)

// twoClassChannels builds a single-channel volume where the left half
// has intensity ~10 and the right half ~100.
func twoClassChannels(n int, noise float64, seed int64) ([]*volume.Scalar, *volume.Labels) {
	g := volume.NewGrid(n, n, n, 1)
	s := volume.NewScalar(g)
	l := volume.NewLabels(g)
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				v := 10.0
				lab := volume.LabelCSF
				if i >= n/2 {
					v = 100
					lab = volume.LabelBrain
				}
				s.Set(i, j, k, v+rng.NormFloat64()*noise)
				l.Set(i, j, k, lab)
			}
		}
	}
	return []*volume.Scalar{s}, l
}

func TestSamplePrototypesPerClass(t *testing.T) {
	channels, labels := twoClassChannels(8, 0, 1)
	protos, err := SamplePrototypes(labels, channels, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[volume.Label]int{}
	for _, p := range protos {
		counts[p.Label]++
	}
	if counts[volume.LabelCSF] != 5 || counts[volume.LabelBrain] != 5 {
		t.Errorf("prototype counts = %v, want 5 each", counts)
	}
}

func TestSamplePrototypesSkipsClasses(t *testing.T) {
	channels, labels := twoClassChannels(8, 0, 1)
	protos, err := SamplePrototypes(labels, channels, 5, 42, volume.LabelCSF)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protos {
		if p.Label == volume.LabelCSF {
			t.Fatal("skipped class was sampled")
		}
	}
}

func TestSamplePrototypesDeterministic(t *testing.T) {
	channels, labels := twoClassChannels(8, 1, 2)
	a, _ := SamplePrototypes(labels, channels, 3, 7)
	b, _ := SamplePrototypes(labels, channels, 3, 7)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].VoxelIndex != b[i].VoxelIndex {
			t.Fatal("same seed gave different prototypes")
		}
	}
}

func TestSamplePrototypesErrors(t *testing.T) {
	channels, labels := twoClassChannels(8, 0, 1)
	if _, err := SamplePrototypes(labels, nil, 5, 1); err == nil {
		t.Error("no channels accepted")
	}
	other := volume.NewLabels(volume.NewGrid(4, 4, 4, 1))
	if _, err := SamplePrototypes(other, channels, 5, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestClassifyTwoClassesCleanly(t *testing.T) {
	channels, labels := twoClassChannels(12, 2, 3)
	protos, err := SamplePrototypes(labels, channels, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 3, Prototypes: protos}
	got, err := c.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	dice, err := got.DiceCoefficient(labels, volume.LabelBrain)
	if err != nil {
		t.Fatal(err)
	}
	if dice < 0.97 {
		t.Errorf("brain Dice = %v, want >= 0.97", dice)
	}
}

func TestClassifyMajorityVote(t *testing.T) {
	// Three prototypes: two of class brain at distance ~2, one of class
	// CSF at distance 0 — with K=3 majority vote should pick brain.
	g := volume.NewGrid(1, 1, 1, 1)
	ch := volume.NewScalar(g)
	ch.Data[0] = 50
	protos := []Prototype{
		{Features: []float64{50}, Label: volume.LabelCSF, VoxelIndex: 0},
		{Features: []float64{52}, Label: volume.LabelBrain, VoxelIndex: 0},
		{Features: []float64{48}, Label: volume.LabelBrain, VoxelIndex: 0},
	}
	c := &Classifier{K: 3, Prototypes: protos}
	out, err := c.Classify([]*volume.Scalar{ch})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != volume.LabelBrain {
		t.Errorf("majority vote = %v, want brain", out.Data[0])
	}
	// With K=1 the exact-match CSF prototype wins.
	c.K = 1
	out, _ = c.Classify([]*volume.Scalar{ch})
	if out.Data[0] != volume.LabelCSF {
		t.Errorf("1-NN = %v, want csf", out.Data[0])
	}
}

func TestClassifyWeightsChannels(t *testing.T) {
	// Two channels disagree; weighting selects which dominates.
	g := volume.NewGrid(1, 1, 1, 1)
	ch1 := volume.NewScalar(g)
	ch2 := volume.NewScalar(g)
	ch1.Data[0] = 0  // near proto A in channel 1
	ch2.Data[0] = 10 // near proto B in channel 2
	protos := []Prototype{
		{Features: []float64{0, 0}, Label: volume.LabelCSF},
		{Features: []float64{10, 10}, Label: volume.LabelBrain},
	}
	c := &Classifier{K: 1, Prototypes: protos, Weights: []float64{1, 0.01}}
	out, err := c.Classify([]*volume.Scalar{ch1, ch2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != volume.LabelCSF {
		t.Error("channel weighting ignored")
	}
	c.Weights = []float64{0.01, 1}
	out, _ = c.Classify([]*volume.Scalar{ch1, ch2})
	if out.Data[0] != volume.LabelBrain {
		t.Error("channel weighting ignored (flipped)")
	}
}

func TestClassifyErrors(t *testing.T) {
	g := volume.NewGrid(2, 2, 2, 1)
	ch := volume.NewScalar(g)
	c := &Classifier{K: 1}
	if _, err := c.Classify([]*volume.Scalar{ch}); err == nil {
		t.Error("empty classifier accepted")
	}
	c.Prototypes = []Prototype{{Features: []float64{1, 2}, Label: 1}}
	if _, err := c.Classify([]*volume.Scalar{ch}); err == nil {
		t.Error("feature arity mismatch accepted")
	}
	c.Prototypes = []Prototype{{Features: []float64{1}, Label: 1}}
	c.Weights = []float64{1, 2, 3}
	if _, err := c.Classify([]*volume.Scalar{ch}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
}

func TestRefreshFeatures(t *testing.T) {
	channels, labels := twoClassChannels(8, 0, 4)
	protos, err := SamplePrototypes(labels, channels, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 1, Prototypes: protos}
	// New scan: intensities shifted by +1000.
	shifted := channels[0].Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 1000
	}
	if err := c.RefreshFeatures([]*volume.Scalar{shifted}); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Prototypes {
		if p.Features[0] < 1000 {
			t.Fatalf("prototype features not refreshed: %v", p.Features)
		}
	}
	// Out-of-range prototype index is rejected.
	c.Prototypes[0].VoxelIndex = 1 << 30
	if err := c.RefreshFeatures([]*volume.Scalar{shifted}); err == nil {
		t.Error("out-of-range prototype accepted")
	}
}

func TestRefreshFeaturesRobustDropsChangedTissue(t *testing.T) {
	channels, labels := twoClassChannels(10, 1, 21)
	protos, err := SamplePrototypes(labels, channels, 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 3, Prototypes: protos}
	before := len(c.Prototypes)
	// Simulate a resection: a block of brain voxels (intensity ~100)
	// becomes cavity (intensity ~5) in the new scan.
	newScan := channels[0].Clone()
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 6; i < 10; i++ {
				newScan.Set(i, j, k, 5)
			}
		}
	}
	if err := c.RefreshFeaturesRobust([]*volume.Scalar{newScan}, 4, 3); err != nil {
		t.Fatal(err)
	}
	if len(c.Prototypes) >= before {
		t.Error("no corrupted prototypes were dropped")
	}
	// All surviving brain prototypes have brain-like intensity.
	for _, p := range c.Prototypes {
		if p.Label == volume.LabelBrain && p.Features[0] < 50 {
			t.Errorf("surviving brain prototype has cavity intensity %v", p.Features[0])
		}
	}
}

func TestRefreshFeaturesRobustKeepsMinimum(t *testing.T) {
	channels, labels := twoClassChannels(8, 1, 23)
	protos, err := SamplePrototypes(labels, channels, 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 1, Prototypes: protos}
	// New scan makes ALL brain voxels look like cavity: with minKeep
	// the class must survive.
	newScan := channels[0].Clone()
	for i := range newScan.Data {
		if newScan.Data[i] > 50 {
			newScan.Data[i] = 5
		}
	}
	if err := c.RefreshFeaturesRobust([]*volume.Scalar{newScan}, 4, 4); err != nil {
		t.Fatal(err)
	}
	count := map[volume.Label]int{}
	for _, p := range c.Prototypes {
		count[p.Label]++
	}
	if count[volume.LabelBrain] < 4 {
		t.Errorf("brain prototypes = %d, want >= minKeep 4", count[volume.LabelBrain])
	}
}

func TestRefreshFeaturesRobustStableOnCleanData(t *testing.T) {
	channels, labels := twoClassChannels(10, 1, 25)
	protos, err := SamplePrototypes(labels, channels, 15, 26)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 3, Prototypes: protos}
	before := len(c.Prototypes)
	// Refreshing from the same scan must not drop (non-outlier) protos.
	if err := c.RefreshFeaturesRobust(channels, 6, 3); err != nil {
		t.Fatal(err)
	}
	if dropped := before - len(c.Prototypes); dropped > before/10 {
		t.Errorf("clean refresh dropped %d of %d prototypes", dropped, before)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
}

func TestClassifyParallelMatchesSerial(t *testing.T) {
	channels, labels := twoClassChannels(10, 3, 5)
	protos, err := SamplePrototypes(labels, channels, 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	serial := &Classifier{K: 3, Prototypes: protos, Workers: 1}
	parallel := &Classifier{K: 3, Prototypes: protos, Workers: 8}
	a, err := serial.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("worker count changed classification at voxel %d", i)
		}
	}
}

// TestClassifyPhantomWithLocalizationChannel reproduces the paper's
// feature design: intensity alone confuses tissues with overlapping
// intensity ranges; adding the spatial localization channel (saturated
// EDT of the preoperative class) disambiguates.
func TestClassifyPhantomWithLocalizationChannel(t *testing.T) {
	p := phantom.DefaultParams(24)
	p.NoiseStd = 4
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	labels := phantom.GenerateLabels(g, p)
	img := phantom.RenderMR(labels, p, rand.New(rand.NewSource(6)))

	// Intensity + per-class localization channels for brain and CSF.
	channels := []*volume.Scalar{
		img,
		edt.Saturated(labels, volume.LabelBrain, 10),
		edt.Saturated(labels, volume.LabelCSF, 10),
	}
	protos, err := SamplePrototypes(labels, channels, 20, 17)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 5, Prototypes: protos, Weights: []float64{1, 10, 10}}
	got, err := c.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	dice, err := got.DiceCoefficient(labels, volume.LabelBrain)
	if err != nil {
		t.Fatal(err)
	}
	if dice < 0.9 {
		t.Errorf("brain Dice with localization channel = %v, want >= 0.9", dice)
	}

	// Intensity-only classifier should do worse (or at best equal).
	protosI, err := SamplePrototypes(labels, channels[:1], 20, 17)
	if err != nil {
		t.Fatal(err)
	}
	ci := &Classifier{K: 5, Prototypes: protosI}
	gotI, err := ci.Classify(channels[:1])
	if err != nil {
		t.Fatal(err)
	}
	diceI, _ := gotI.DiceCoefficient(labels, volume.LabelBrain)
	if diceI > dice+1e-9 {
		t.Errorf("intensity-only Dice %v beat localization Dice %v", diceI, dice)
	}
}
