package classify

import (
	"testing"
)

func BenchmarkClassify(b *testing.B) {
	channels, labels := twoClassChannels(32, 3, 7)
	protos, err := SamplePrototypes(labels, channels, 30, 11)
	if err != nil {
		b.Fatal(err)
	}
	c := &Classifier{K: 5, Prototypes: protos, Workers: 4}
	b.SetBytes(int64(channels[0].Grid.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Classify(channels); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplePrototypes(b *testing.B) {
	channels, labels := twoClassChannels(32, 3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SamplePrototypes(labels, channels, 30, 11); err != nil {
			b.Fatal(err)
		}
	}
}
