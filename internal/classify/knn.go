// Package classify implements the paper's intraoperative tissue
// classification: k-nearest-neighbor classification of each voxel in a
// multichannel feature space combining intraoperative MR intensity with
// the spatially varying anatomical localization model (saturated
// distance transforms of the preoperative segmentation).
//
// The statistical model is encoded implicitly by prototype voxels of
// known tissue class (selected once with a few minutes of interaction
// in the paper; sampled from the warped preoperative segmentation
// here). The spatial locations of the prototypes are recorded so the
// model can be refreshed automatically when later intraoperative scans
// arrive, exactly as the paper describes.
package classify

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/volume"
)

// ctxCheckMask gates the worker-loop context polls: each worker checks
// ctx.Err() once every ctxCheckMask+1 voxels, keeping the abort latency
// far below a millisecond without measurable per-voxel overhead.
const ctxCheckMask = 0x3FF

// Prototype is a labeled sample point in feature space.
type Prototype struct {
	Features []float64
	Label    volume.Label
	// VoxelIndex is the linear index of the voxel the prototype was
	// taken from, recorded so features can be re-read from new scans.
	VoxelIndex int
}

// Classifier is a k-NN classifier over multichannel voxel features.
type Classifier struct {
	K          int
	Prototypes []Prototype
	// Weights scales each feature channel before distance computation;
	// nil means all channels weigh 1. Distance-transform channels are
	// typically down-weighted relative to intensity.
	Weights []float64
	// Workers is the parallelism degree; 0 means GOMAXPROCS. The paper
	// runs classification in parallel alongside the FEM solver on the
	// same hardware (its SC'98 companion paper).
	Workers int
}

// channelsToFeatures reads the feature vector of voxel idx from the
// channel volumes.
func channelsToFeatures(channels []*volume.Scalar, idx int, out []float64) {
	for c, ch := range channels {
		out[c] = float64(ch.Data[idx])
	}
}

// validateChannels checks all channels share one grid shape.
func validateChannels(channels []*volume.Scalar) error {
	if len(channels) == 0 {
		return fmt.Errorf("classify: no feature channels")
	}
	g := channels[0].Grid
	for i, ch := range channels[1:] {
		if !ch.Grid.SameShape(g) {
			return fmt.Errorf("classify: channel %d shape %v != channel 0 shape %v",
				i+1, ch.Grid, g)
		}
	}
	return nil
}

// SamplePrototypes draws prototypes with a background context; see
// SamplePrototypesContext.
func SamplePrototypes(labels *volume.Labels, channels []*volume.Scalar,
	perClass int, seed int64, skip ...volume.Label) ([]Prototype, error) {
	return SamplePrototypesContext(context.Background(), labels, channels, perClass, seed, skip...)
}

// SamplePrototypesContext draws up to perClass prototype voxels for
// every label present in labels (excluding classes in skip), reading
// their feature vectors from channels. Sampling is deterministic for a
// given seed. The per-voxel class census polls the context; a cancelled
// context aborts the sampling and returns ctx.Err().
func SamplePrototypesContext(ctx context.Context, labels *volume.Labels, channels []*volume.Scalar,
	perClass int, seed int64, skip ...volume.Label) ([]Prototype, error) {
	if err := validateChannels(channels); err != nil {
		return nil, err
	}
	if !labels.Grid.SameShape(channels[0].Grid) {
		return nil, fmt.Errorf("classify: labels shape %v != channels shape %v",
			labels.Grid, channels[0].Grid)
	}
	skipSet := map[volume.Label]bool{}
	for _, s := range skip {
		skipSet[s] = true
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[volume.Label][]int{}
	for idx, lab := range labels.Data {
		if idx&ctxCheckMask == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if skipSet[lab] {
			continue
		}
		byClass[lab] = append(byClass[lab], idx)
	}
	// Deterministic class order.
	classes := make([]volume.Label, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })

	var protos []Prototype
	nc := len(channels)
	for _, c := range classes {
		idxs := byClass[c]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		n := perClass
		if n > len(idxs) {
			n = len(idxs)
		}
		for _, idx := range idxs[:n] {
			p := Prototype{
				Features:   make([]float64, nc),
				Label:      c,
				VoxelIndex: idx,
			}
			channelsToFeatures(channels, idx, p.Features)
			protos = append(protos, p)
		}
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("classify: no prototypes could be sampled")
	}
	return protos, nil
}

// RefreshFeatures refreshes the prototype features with a background
// context; see RefreshFeaturesContext.
func (c *Classifier) RefreshFeatures(channels []*volume.Scalar) error {
	return c.RefreshFeaturesContext(context.Background(), channels)
}

// RefreshFeaturesContext re-reads every prototype's feature vector from
// a new set of channel volumes at the recorded voxel locations — the
// paper's automatic statistical model update for subsequent
// intraoperative scans. A cancelled context aborts the refresh and
// returns ctx.Err().
func (c *Classifier) RefreshFeaturesContext(ctx context.Context, channels []*volume.Scalar) error {
	if err := validateChannels(channels); err != nil {
		return err
	}
	n := channels[0].Grid.Len()
	for i := range c.Prototypes {
		if i&ctxCheckMask == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		p := &c.Prototypes[i]
		if p.VoxelIndex < 0 || p.VoxelIndex >= n {
			return fmt.Errorf("classify: prototype %d voxel index %d out of range", i, p.VoxelIndex)
		}
		if len(p.Features) != len(channels) {
			p.Features = make([]float64, len(channels))
		}
		channelsToFeatures(channels, p.VoxelIndex, p.Features)
	}
	return nil
}

// RefreshFeaturesRobust refreshes the prototype features from new
// channel volumes like RefreshFeatures, then discards prototypes whose
// refreshed intensity (channel 0) is an outlier within their class —
// deviating from the class median by more than maxDev median absolute
// deviations. Such prototypes sit where the tissue itself changed
// between scans (resection cavity, brain-shift gap) and would poison
// the statistical model; a human expert would simply not pick them. At
// least minKeep prototypes per class are always retained (the nearest
// to the median), so a class can never vanish from the model.
//
// RefreshFeaturesRobust runs with a background context; see
// RefreshFeaturesRobustContext.
func (c *Classifier) RefreshFeaturesRobust(channels []*volume.Scalar, maxDev float64, minKeep int) error {
	return c.RefreshFeaturesRobustContext(context.Background(), channels, maxDev, minKeep)
}

// RefreshFeaturesRobustContext is RefreshFeaturesRobust bounded by a
// context: cancellation aborts during the underlying refresh and
// between per-class outlier passes, returning ctx.Err().
func (c *Classifier) RefreshFeaturesRobustContext(ctx context.Context, channels []*volume.Scalar, maxDev float64, minKeep int) error {
	if err := c.RefreshFeaturesContext(ctx, channels); err != nil {
		return err
	}
	if maxDev <= 0 {
		maxDev = 4
	}
	if minKeep < 1 {
		minKeep = 1
	}
	byClass := map[volume.Label][]int{}
	for i, p := range c.Prototypes {
		byClass[p.Label] = append(byClass[p.Label], i)
	}
	drop := make([]bool, len(c.Prototypes))
	for _, idxs := range byClass {
		if err := ctx.Err(); err != nil {
			return err
		}
		vals := make([]float64, len(idxs))
		for k, i := range idxs {
			vals[k] = c.Prototypes[i].Features[0]
		}
		med := median(vals)
		devs := make([]float64, len(vals))
		for k, v := range vals {
			devs[k] = abs64(v - med)
		}
		mad := median(devs)
		if mad < 1e-9 {
			mad = 1e-9
		}
		// Candidates to drop, most deviant first; stop before dropping
		// below minKeep.
		type cand struct {
			idx int
			dev float64
		}
		var cands []cand
		for k, i := range idxs {
			if devs[k] > maxDev*mad {
				cands = append(cands, cand{i, devs[k]})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dev > cands[b].dev })
		allowed := len(idxs) - minKeep
		if allowed < 0 {
			allowed = 0
		}
		if len(cands) > allowed {
			cands = cands[:allowed]
		}
		for _, cd := range cands {
			drop[cd.idx] = true
		}
	}
	kept := c.Prototypes[:0]
	for i, p := range c.Prototypes {
		if !drop[i] {
			kept = append(kept, p)
		}
	}
	c.Prototypes = kept
	return nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Classify labels every voxel with a background context; see
// ClassifyContext.
func (c *Classifier) Classify(channels []*volume.Scalar) (*volume.Labels, error) {
	return c.ClassifyContext(context.Background(), channels)
}

// ClassifyContext labels every voxel of the channel volumes by majority
// vote among the K nearest prototypes in (weighted) Euclidean feature
// space. Ties break toward the nearer prototype set (first encountered
// in ascending distance order). Worker goroutines poll the context
// periodically; a cancelled or deadline-expired context aborts the
// classification and returns ctx.Err().
func (c *Classifier) ClassifyContext(ctx context.Context, channels []*volume.Scalar) (*volume.Labels, error) {
	if err := validateChannels(channels); err != nil {
		return nil, err
	}
	if len(c.Prototypes) == 0 {
		return nil, fmt.Errorf("classify: classifier has no prototypes")
	}
	k := c.K
	if k <= 0 {
		k = 1
	}
	if k > len(c.Prototypes) {
		k = len(c.Prototypes)
	}
	nc := len(channels)
	for i, p := range c.Prototypes {
		if len(p.Features) != nc {
			return nil, fmt.Errorf("classify: prototype %d has %d features, want %d",
				i, len(p.Features), nc)
		}
	}
	weights := c.Weights
	if weights == nil {
		weights = make([]float64, nc)
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != nc {
		return nil, fmt.Errorf("classify: %d weights for %d channels", len(weights), nc)
	}

	g := channels[0].Grid
	out := volume.NewLabels(g)
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Partition voxels into contiguous ranges, one goroutine per range.
	nvox := g.Len()
	chunk := (nvox + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nvox {
			hi = nvox
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// One span per worker batch: the k-NN sweep is the pipeline's
			// per-voxel hot loop, so batch spans expose straggler workers.
			// The deferred End records ctx.Err() — nil on a completed
			// batch, the cancellation cause on an aborted one.
			_, span := obs.StartSpan(ctx, obs.SpanKNNBatch)
			defer func() { span.End(ctx.Err()) }()
			span.SetAttr("worker", w)
			span.SetAttr("voxels", hi-lo)
			feat := make([]float64, nc)
			bestD := make([]float64, k)
			bestL := make([]volume.Label, k)
			for idx := lo; idx < hi; idx++ {
				if idx&ctxCheckMask == 0 && ctx.Err() != nil {
					return
				}
				channelsToFeatures(channels, idx, feat)
				c.nearest(feat, weights, k, bestD, bestL)
				out.Data[idx] = vote(bestL, bestD)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// nearest fills bestD/bestL with the k nearest prototypes to feat, in
// ascending distance order, using insertion into a fixed-size sorted
// buffer (k is small).
func (c *Classifier) nearest(feat, weights []float64, k int, bestD []float64, bestL []volume.Label) {
	for i := range bestD {
		bestD[i] = 1e300
		bestL[i] = 0
	}
	for pi := range c.Prototypes {
		p := &c.Prototypes[pi]
		d := 0.0
		for f := range feat {
			diff := (feat[f] - p.Features[f]) * weights[f]
			d += diff * diff
			if d >= bestD[k-1] {
				break
			}
		}
		if d >= bestD[k-1] {
			continue
		}
		// Insert into sorted position.
		pos := k - 1
		for pos > 0 && bestD[pos-1] > d {
			bestD[pos] = bestD[pos-1]
			bestL[pos] = bestL[pos-1]
			pos--
		}
		bestD[pos] = d
		bestL[pos] = p.Label
	}
}

// vote returns the majority label among the neighbors; ties go to the
// label whose nearest representative is closest.
func vote(labels []volume.Label, dists []float64) volume.Label {
	var count [256]int
	var nearestDist [256]float64
	for i := range nearestDist {
		nearestDist[i] = 1e300
	}
	for i, l := range labels {
		if dists[i] >= 1e300 {
			continue
		}
		count[l]++
		if dists[i] < nearestDist[l] {
			nearestDist[l] = dists[i]
		}
	}
	best := volume.Label(0)
	bestCount := -1
	bestDist := 1e300
	for l := 0; l < 256; l++ {
		if count[l] == 0 {
			continue
		}
		if count[l] > bestCount || (count[l] == bestCount && nearestDist[l] < bestDist) {
			best = volume.Label(l)
			bestCount = count[l]
			bestDist = nearestDist[l]
		}
	}
	return best
}
