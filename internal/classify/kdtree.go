package classify

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/volume"
)

// kdNode is a node of a k-d tree over prototype feature vectors.
type kdNode struct {
	axis        int
	split       float64
	proto       int // index into the prototype slice (leaf payload)
	left, right *kdNode
	leaf        bool
	// leafProtos holds the prototype indices of a leaf bucket.
	leafProtos []int
}

// KDTree accelerates k-NN queries over the (weighted) prototype feature
// space. With a few hundred prototypes brute force is already fast; the
// tree matters when the prototype set grows toward the thousands the
// paper's interactive selection could produce over a long case.
type KDTree struct {
	root    *kdNode
	protos  []Prototype
	weights []float64
	dim     int
}

const kdLeafSize = 8

// NewKDTree builds a k-d tree over the classifier's prototypes using
// its channel weights (nil = unit weights).
func NewKDTree(protos []Prototype, weights []float64) *KDTree {
	if len(protos) == 0 {
		return &KDTree{}
	}
	dim := len(protos[0].Features)
	w := weights
	if w == nil {
		w = make([]float64, dim)
		for i := range w {
			w[i] = 1
		}
	}
	t := &KDTree{protos: protos, weights: w, dim: dim}
	idxs := make([]int, len(protos))
	for i := range idxs {
		idxs[i] = i
	}
	t.root = t.build(idxs, 0)
	return t
}

// scaled returns the weighted coordinate of prototype p on axis a.
func (t *KDTree) scaled(p, a int) float64 {
	return t.protos[p].Features[a] * t.weights[a]
}

func (t *KDTree) build(idxs []int, depth int) *kdNode {
	if len(idxs) <= kdLeafSize {
		return &kdNode{leaf: true, leafProtos: idxs}
	}
	axis := depth % t.dim
	sort.Slice(idxs, func(a, b int) bool {
		return t.scaled(idxs[a], axis) < t.scaled(idxs[b], axis)
	})
	mid := len(idxs) / 2
	n := &kdNode{
		axis:  axis,
		split: t.scaled(idxs[mid], axis),
		proto: idxs[mid],
	}
	n.left = t.build(idxs[:mid], depth+1)
	n.right = t.build(idxs[mid:], depth+1)
	return n
}

// Nearest fills bestD (squared weighted distances, ascending) and bestL
// with the k nearest prototypes to the (unweighted) feature vector.
// Slices must have length k and are fully overwritten.
func (t *KDTree) Nearest(feat []float64, bestD []float64, bestL []volume.Label) {
	for i := range bestD {
		bestD[i] = 1e300
		bestL[i] = 0
	}
	if t.root == nil {
		return
	}
	q := make([]float64, t.dim)
	for i := 0; i < t.dim; i++ {
		q[i] = feat[i] * t.weights[i]
	}
	t.search(t.root, q, bestD, bestL)
}

func (t *KDTree) search(n *kdNode, q []float64, bestD []float64, bestL []volume.Label) {
	k := len(bestD)
	if n.leaf {
		for _, pi := range n.leafProtos {
			d := 0.0
			f := t.protos[pi].Features
			for a := 0; a < t.dim; a++ {
				diff := q[a] - f[a]*t.weights[a]
				d += diff * diff
				if d >= bestD[k-1] {
					break
				}
			}
			if d >= bestD[k-1] {
				continue
			}
			pos := k - 1
			for pos > 0 && bestD[pos-1] > d {
				bestD[pos] = bestD[pos-1]
				bestL[pos] = bestL[pos-1]
				pos--
			}
			bestD[pos] = d
			bestL[pos] = t.protos[pi].Label
		}
		return
	}
	diff := q[n.axis] - n.split
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, bestD, bestL)
	// Prune the far subtree when the splitting plane is beyond the
	// current k-th distance.
	if diff*diff < bestD[k-1] {
		t.search(far, q, bestD, bestL)
	}
}

// ClassifyKD labels every voxel with a background context; see
// ClassifyKDContext.
func (c *Classifier) ClassifyKD(channels []*volume.Scalar) (*volume.Labels, error) {
	return c.ClassifyKDContext(context.Background(), channels)
}

// ClassifyKDContext labels every voxel like ClassifyContext but answers
// neighbor queries through a k-d tree. Results are identical to
// Classify up to ties at exactly equal distances. Worker goroutines
// poll the context periodically; a cancelled or deadline-expired
// context aborts the classification and returns ctx.Err().
func (c *Classifier) ClassifyKDContext(ctx context.Context, channels []*volume.Scalar) (*volume.Labels, error) {
	if err := validateChannels(channels); err != nil {
		return nil, err
	}
	if len(c.Prototypes) == 0 {
		return nil, fmt.Errorf("classify: classifier has no prototypes")
	}
	k := c.K
	if k <= 0 {
		k = 1
	}
	if k > len(c.Prototypes) {
		k = len(c.Prototypes)
	}
	nc := len(channels)
	weights := c.Weights
	if weights != nil && len(weights) != nc {
		return nil, fmt.Errorf("classify: %d weights for %d channels", len(weights), nc)
	}
	tree := NewKDTree(c.Prototypes, weights)
	g := channels[0].Grid
	out := volume.NewLabels(g)
	workers := c.Workers
	if workers <= 0 {
		workers = 1
	}
	nvox := g.Len()
	chunk := (nvox + workers - 1) / workers
	done := make(chan error, workers)
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nvox {
			hi = nvox
		}
		if lo >= hi {
			break
		}
		launched++
		go func(w, lo, hi int) {
			defer func() { done <- nil }()
			// Batch spans mirror ClassifyContext's (see knn.go). LIFO
			// defers end the span before the done send unblocks the
			// caller.
			_, span := obs.StartSpan(ctx, obs.SpanKNNBatch)
			defer func() { span.End(ctx.Err()) }()
			span.SetAttr("worker", w)
			span.SetAttr("voxels", hi-lo)
			span.SetAttr("kdtree", true)
			feat := make([]float64, nc)
			bestD := make([]float64, k)
			bestL := make([]volume.Label, k)
			for idx := lo; idx < hi; idx++ {
				if idx&ctxCheckMask == 0 && ctx.Err() != nil {
					break
				}
				channelsToFeatures(channels, idx, feat)
				tree.Nearest(feat, bestD, bestL)
				out.Data[idx] = vote(bestL, bestD)
			}
		}(w, lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
