package classify

import (
	"math/rand"
	"testing"

	"repro/internal/volume"
)

// randomPrototypes builds n prototypes with d-dimensional random
// features and random labels from {1, 2, 3}.
func randomPrototypes(n, d int, seed int64) []Prototype {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Prototype, n)
	for i := range out {
		f := make([]float64, d)
		for j := range f {
			f[j] = rng.Float64() * 100
		}
		out[i] = Prototype{Features: f, Label: volume.Label(1 + rng.Intn(3))}
	}
	return out
}

// bruteNearest is the reference k-NN used to validate the tree.
func bruteNearest(protos []Prototype, weights, feat []float64, k int) ([]float64, []volume.Label) {
	bestD := make([]float64, k)
	bestL := make([]volume.Label, k)
	for i := range bestD {
		bestD[i] = 1e300
	}
	for pi := range protos {
		d := 0.0
		for a := range feat {
			w := 1.0
			if weights != nil {
				w = weights[a]
			}
			diff := (feat[a] - protos[pi].Features[a]) * w
			d += diff * diff
		}
		if d >= bestD[k-1] {
			continue
		}
		pos := k - 1
		for pos > 0 && bestD[pos-1] > d {
			bestD[pos] = bestD[pos-1]
			bestL[pos] = bestL[pos-1]
			pos--
		}
		bestD[pos] = d
		bestL[pos] = protos[pi].Label
	}
	return bestD, bestL
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(300)
		d := 1 + rng.Intn(4)
		protos := randomPrototypes(n, d, int64(trial))
		var weights []float64
		if trial%2 == 0 {
			weights = make([]float64, d)
			for i := range weights {
				weights[i] = 0.1 + rng.Float64()*5
			}
		}
		tree := NewKDTree(protos, weights)
		k := 1 + rng.Intn(5)
		for q := 0; q < 50; q++ {
			feat := make([]float64, d)
			for a := range feat {
				feat[a] = rng.Float64() * 100
			}
			gotD := make([]float64, k)
			gotL := make([]volume.Label, k)
			tree.Nearest(feat, gotD, gotL)
			wantD, _ := bruteNearest(protos, weights, feat, k)
			for i := 0; i < k; i++ {
				if diff := gotD[i] - wantD[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d q %d: dist[%d] = %v, want %v", trial, q, i, gotD[i], wantD[i])
				}
			}
		}
	}
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil, nil)
	bestD := make([]float64, 2)
	bestL := make([]volume.Label, 2)
	tree.Nearest([]float64{1}, bestD, bestL)
	if bestD[0] < 1e299 {
		t.Error("empty tree returned a neighbor")
	}
}

func TestClassifyKDMatchesClassify(t *testing.T) {
	channels, labels := twoClassChannels(14, 3, 41)
	protos, err := SamplePrototypes(labels, channels, 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{K: 5, Prototypes: protos, Workers: 3}
	a, err := c.Classify(channels)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ClassifyKD(channels)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := 0
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			mismatch++
		}
	}
	// Exact-tie voxels may legitimately differ; anything more indicates
	// a tree bug.
	if frac := float64(mismatch) / float64(len(a.Data)); frac > 0.001 {
		t.Errorf("kd-tree classification differs at %.3f%% of voxels", 100*frac)
	}
}

func TestClassifyKDErrors(t *testing.T) {
	c := &Classifier{K: 1}
	g := volume.NewGrid(2, 2, 2, 1)
	ch := volume.NewScalar(g)
	if _, err := c.ClassifyKD([]*volume.Scalar{ch}); err == nil {
		t.Error("empty classifier accepted")
	}
	c.Prototypes = []Prototype{{Features: []float64{1}, Label: 1}}
	c.Weights = []float64{1, 2}
	if _, err := c.ClassifyKD([]*volume.Scalar{ch}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
}

func BenchmarkClassifyBruteVsKD(b *testing.B) {
	channels, labels := twoClassChannels(24, 3, 51)
	protos, err := SamplePrototypes(labels, channels, 500, 52)
	if err != nil {
		b.Fatal(err)
	}
	c := &Classifier{K: 5, Prototypes: protos, Workers: 2}
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Classify(channels); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.ClassifyKD(channels); err != nil {
				b.Fatal(err)
			}
		}
	})
}
