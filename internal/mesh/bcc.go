package mesh

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/volume"
)

// FromLabelsBCC generates a tetrahedral mesh on the body-centered cubic
// lattice: cell corners plus cell centers, with four tetrahedra around
// every interior face (the two adjacent cell centers plus each face
// edge) and two around every boundary face. BCC tetrahedra are
// congruent and much closer to regular than the Kuhn split's, and every
// interior node sees the same connectivity pattern — the "tetrahedral
// mesh with a more regular connectivity pattern" the paper proposes as
// future work for better assembly scaling.
func FromLabelsBCC(l *volume.Labels, opts Options) (*Mesh, error) {
	if err := l.Grid.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	cs := opts.CellSize
	if cs <= 0 {
		cs = 1
	}
	include := opts.Include
	if include == nil {
		include = func(lab volume.Label) bool { return lab != volume.LabelBackground }
	}
	g := l.Grid
	cx, cy, cz := g.NX/cs, g.NY/cs, g.NZ/cs
	if cx < 1 || cy < 1 || cz < 1 {
		return nil, fmt.Errorf("mesh: cell size %d too large for grid %v", cs, g)
	}
	lx, ly, lz := cx+1, cy+1, cz+1

	// Majority label per cell, precomputed; background cells excluded.
	cellLab := make([]volume.Label, cx*cy*cz)
	cellIn := make([]bool, cx*cy*cz)
	cellIndex := func(i, j, k int) int { return (k*cy+j)*cx + i }
	for ck := 0; ck < cz; ck++ {
		for cj := 0; cj < cy; cj++ {
			for ci := 0; ci < cx; ci++ {
				var count [256]int
				for dk := 0; dk < cs; dk++ {
					for dj := 0; dj < cs; dj++ {
						for di := 0; di < cs; di++ {
							vi, vj, vk := ci*cs+di, cj*cs+dj, ck*cs+dk
							if g.InBounds(vi, vj, vk) {
								count[l.Data[g.Index(vi, vj, vk)]]++
							}
						}
					}
				}
				best, bestN := volume.LabelBackground, -1
				for lab := 0; lab < 256; lab++ {
					if count[lab] > bestN {
						best, bestN = volume.Label(lab), count[lab]
					}
				}
				idx := cellIndex(ci, cj, ck)
				cellLab[idx] = best
				cellIn[idx] = include(best)
			}
		}
	}

	m := &Mesh{}
	cornerID := make([]int32, lx*ly*lz)
	for i := range cornerID {
		cornerID[i] = -1
	}
	centerID := make([]int32, cx*cy*cz)
	for i := range centerID {
		centerID[i] = -1
	}
	clampWorld := func(vi, vj, vk int) geom.Vec3 {
		if vi > g.NX-1 {
			vi = g.NX - 1
		}
		if vj > g.NY-1 {
			vj = g.NY - 1
		}
		if vk > g.NZ-1 {
			vk = g.NZ - 1
		}
		return g.World(vi, vj, vk)
	}
	getCorner := func(i, j, k int) int32 {
		li := (k*ly+j)*lx + i
		if cornerID[li] >= 0 {
			return cornerID[li]
		}
		id := int32(len(m.Nodes))
		m.Nodes = append(m.Nodes, clampWorld(i*cs, j*cs, k*cs))
		cornerID[li] = id
		return id
	}
	getCenter := func(ci, cj, ck int) int32 {
		idx := cellIndex(ci, cj, ck)
		if centerID[idx] >= 0 {
			return centerID[idx]
		}
		id := int32(len(m.Nodes))
		// Center at the midpoint of the cell's corner span.
		a := clampWorld(ci*cs, cj*cs, ck*cs)
		b := clampWorld((ci+1)*cs, (cj+1)*cs, (ck+1)*cs)
		m.Nodes = append(m.Nodes, a.Add(b).Scale(0.5))
		centerID[idx] = id
		return id
	}

	addTet := func(a, b, c, d int32) {
		ids := [4]int32{a, b, c, d}
		t := geom.Tet{P: [4]geom.Vec3{m.Nodes[a], m.Nodes[b], m.Nodes[c], m.Nodes[d]}}
		if t.SignedVolume() < 0 {
			ids[2], ids[3] = ids[3], ids[2]
		}
		lab := l.AtWorld(geom.Tet{P: [4]geom.Vec3{
			m.Nodes[ids[0]], m.Nodes[ids[1]], m.Nodes[ids[2]], m.Nodes[ids[3]],
		}}.Centroid())
		if !include(lab) {
			// Fall back to the owning cell's label: centroid sampling
			// near boundaries can land outside the include set.
			lab = volume.LabelBackground
		}
		m.Tets = append(m.Tets, ids)
		m.TetLabel = append(m.TetLabel, lab)
	}

	// faceCorners lists the 4 corner lattice offsets of each +axis face
	// of cell (ci,cj,ck), in cyclic order around the face.
	type faceSpec struct {
		axis    int
		corners [4][3]int
	}
	faces := []faceSpec{
		{0, [4][3]int{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}, {1, 0, 1}}}, // +x
		{1, [4][3]int{{0, 1, 0}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}}}, // +y
		{2, [4][3]int{{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}}}, // +z
	}
	// Also the -axis boundary faces (only emitted when the neighbor is
	// absent).
	negFaces := []faceSpec{
		{0, [4][3]int{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {0, 1, 0}}}, // -x
		{1, [4][3]int{{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {0, 0, 1}}}, // -y
		{2, [4][3]int{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 0, 0}}}, // -z
	}

	for ck := 0; ck < cz; ck++ {
		for cj := 0; cj < cy; cj++ {
			for ci := 0; ci < cx; ci++ {
				if !cellIn[cellIndex(ci, cj, ck)] {
					continue
				}
				cA := getCenter(ci, cj, ck)
				// +axis faces: pair with the neighbor when present (4
				// tets spanning both centers), else fan from cA (2 tets).
				for _, f := range faces {
					ni, nj, nk := ci, cj, ck
					switch f.axis {
					case 0:
						ni++
					case 1:
						nj++
					default:
						nk++
					}
					neighborIn := ni < cx && nj < cy && nk < cz && cellIn[cellIndex(ni, nj, nk)]
					var fc [4]int32
					for s, off := range f.corners {
						fc[s] = getCorner(ci+off[0], cj+off[1], ck+off[2])
					}
					if neighborIn {
						cB := getCenter(ni, nj, nk)
						for s := 0; s < 4; s++ {
							addTet(cA, cB, fc[s], fc[(s+1)%4])
						}
					} else {
						// Boundary face: pyramid from cA split along the
						// min-vertex diagonal for consistency.
						d0 := 0
						if minI32(fc[1], fc[3]) < minI32(fc[0], fc[2]) {
							d0 = 1
						}
						addTet(cA, fc[d0], fc[d0+1], fc[(d0+2)%4])
						addTet(cA, fc[d0], fc[(d0+2)%4], fc[(d0+3)%4])
					}
				}
				// -axis boundary faces.
				for _, f := range negFaces {
					ni, nj, nk := ci, cj, ck
					switch f.axis {
					case 0:
						ni--
					case 1:
						nj--
					default:
						nk--
					}
					neighborIn := ni >= 0 && nj >= 0 && nk >= 0 && cellIn[cellIndex(ni, nj, nk)]
					if neighborIn {
						continue // interior face handled by the neighbor's +axis pass
					}
					var fc [4]int32
					for s, off := range f.corners {
						fc[s] = getCorner(ci+off[0], cj+off[1], ck+off[2])
					}
					d0 := 0
					if minI32(fc[1], fc[3]) < minI32(fc[0], fc[2]) {
						d0 = 1
					}
					addTet(cA, fc[d0], fc[d0+1], fc[(d0+2)%4])
					addTet(cA, fc[d0], fc[(d0+2)%4], fc[(d0+3)%4])
				}
			}
		}
	}
	if len(m.Tets) == 0 {
		return nil, fmt.Errorf("mesh: no cells matched the include predicate")
	}
	// Tets whose centroid fell outside the include set keep background;
	// patch them to their nearest cell label for material assignment.
	for e, lab := range m.TetLabel {
		if lab == volume.LabelBackground {
			c := m.TetGeom(e).Centroid()
			m.TetLabel[e] = nearestIncludedLabel(l, c, include)
		}
	}
	return m, nil
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// nearestIncludedLabel samples outward from p until an included label
// is found (bounded search), defaulting to the first included label of
// the volume. The outward walk steps in voxel space: neighbor probes
// are index offsets, not millimeter offsets, so anisotropic spacing
// cannot skew the search pattern.
func nearestIncludedLabel(l *volume.Labels, p geom.Vec3, include func(volume.Label) bool) volume.Label {
	v := l.Grid.Voxel(p).Round()
	if lab := l.AtVox(v); include(lab) {
		return lab
	}
	for r := 1; r <= 4; r++ {
		for _, d := range []geom.Voxel{
			{I: r}, {I: -r}, {J: r}, {J: -r}, {K: r}, {K: -r},
		} {
			if lab := l.AtVox(v.Add(d)); include(lab) {
				return lab
			}
		}
	}
	for _, lab := range l.Present() {
		if include(lab) {
			return lab
		}
	}
	return volume.LabelBackground
}
