package mesh

import (
	"math"
	"testing"

	"repro/internal/phantom"
	"repro/internal/volume"
)

// solidCube returns a label volume with an n^3 cube of brain filling the
// whole grid.
func solidCube(n int) *volume.Labels {
	g := volume.NewGrid(n, n, n, 1)
	l := volume.NewLabels(g)
	for i := range l.Data {
		l.Data[i] = volume.LabelBrain
	}
	return l
}

func TestFromLabelsSolidCube(t *testing.T) {
	l := solidCube(8)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells per axis -> 64 cells -> 384 tets, 5^3 = 125 nodes.
	if m.NumTets() != 64*6 {
		t.Errorf("tets = %d, want 384", m.NumTets())
	}
	if m.NumNodes() != 125 {
		t.Errorf("nodes = %d, want 125", m.NumNodes())
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Mesh volume must equal the lattice volume: (8-1... cells cover
	// voxel centers 0..8 in steps of 2, so extent is 8 per axis? The
	// lattice spans voxel coords 0..8 clamped to 0..7 at the far face:
	// accept the analytic volume of the tet decomposition instead.
	vol := m.TotalVolume()
	if vol <= 0 {
		t.Error("zero mesh volume")
	}
	// All six tets of a cell tile it exactly: volume equals the summed
	// cell volume (7 voxel units per axis on the last row due to
	// clamping: 3 full 2-unit cells + 1 clamped 1-unit cell).
	want := math.Pow(2*3+1, 3)
	if math.Abs(vol-want) > 1e-9 {
		t.Errorf("mesh volume = %v, want %v", vol, want)
	}
}

func TestFromLabelsSkipsBackground(t *testing.T) {
	g := volume.NewGrid(8, 8, 8, 1)
	l := volume.NewLabels(g)
	// Brain only in one octant.
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				l.Set(i, j, k, volume.LabelBrain)
			}
		}
	}
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 2x2x2 = 8 cells of the brain octant are meshed.
	if m.NumTets() != 8*6 {
		t.Errorf("tets = %d, want 48", m.NumTets())
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFromLabelsIncludePredicate(t *testing.T) {
	l := solidCube(4)
	// Exclude everything -> error.
	if _, err := FromLabels(l, Options{CellSize: 2, Include: func(volume.Label) bool { return false }}); err == nil {
		t.Error("empty include accepted")
	}
}

func TestFromLabelsRejectsBadInputs(t *testing.T) {
	bad := &volume.Labels{Grid: volume.Grid{}}
	if _, err := FromLabels(bad, Options{}); err == nil {
		t.Error("invalid grid accepted")
	}
	l := solidCube(4)
	if _, err := FromLabels(l, Options{CellSize: 99}); err == nil {
		t.Error("oversized cell accepted")
	}
}

func TestMeshLabelsFollowAnatomy(t *testing.T) {
	p := phantom.DefaultParams(24)
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	vols := m.LabelVolumes()
	if vols[volume.LabelBrain] == 0 {
		t.Error("no brain elements")
	}
	if vols[volume.LabelSkull] == 0 {
		t.Error("no skull elements")
	}
	// Brain should dominate intracranial volume.
	if vols[volume.LabelBrain] < vols[volume.LabelVentricle] {
		t.Error("ventricles larger than brain")
	}
}

func TestNodeAdjacencySymmetric(t *testing.T) {
	l := solidCube(6)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	adj := m.NodeAdjacency()
	for a, neigh := range adj {
		for _, b := range neigh {
			found := false
			for _, back := range adj[b] {
				if int(back) == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", a, b)
			}
		}
	}
	// Interior nodes of a Kuhn lattice have higher valence than corner
	// nodes — the connectivity imbalance the paper describes.
	minV, maxV := 1<<30, 0
	for _, neigh := range adj {
		if len(neigh) == 0 {
			continue
		}
		if len(neigh) < minV {
			minV = len(neigh)
		}
		if len(neigh) > maxV {
			maxV = len(neigh)
		}
	}
	if maxV <= minV {
		t.Errorf("expected connectivity variation, got min=%d max=%d", minV, maxV)
	}
}

func TestQualityStats(t *testing.T) {
	l := solidCube(4)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quality()
	if q.Degenerate != 0 {
		t.Errorf("%d degenerate elements", q.Degenerate)
	}
	if q.MinQuality <= 0 || q.MinQuality > 1 {
		t.Errorf("MinQuality = %v", q.MinQuality)
	}
	if q.MeanQuality < q.MinQuality {
		t.Error("mean < min")
	}
	if q.MinVolume <= 0 || q.MaxVolume < q.MinVolume {
		t.Errorf("volumes: min=%v max=%v", q.MinVolume, q.MaxVolume)
	}
}

func TestCheckConsistencyCatchesBadMesh(t *testing.T) {
	l := solidCube(4)
	m, _ := FromLabels(l, Options{CellSize: 2})
	// Out-of-range node.
	bad := &Mesh{Nodes: m.Nodes, Tets: [][4]int32{{0, 1, 2, 9999}}, TetLabel: []volume.Label{1}}
	if err := bad.CheckConsistency(); err == nil {
		t.Error("out-of-range node accepted")
	}
	// Inverted element.
	tet := m.Tets[0]
	inv := &Mesh{
		Nodes:    m.Nodes,
		Tets:     [][4]int32{{tet[0], tet[1], tet[3], tet[2]}},
		TetLabel: []volume.Label{1},
	}
	if err := inv.CheckConsistency(); err == nil {
		t.Error("inverted element accepted")
	}
	// Label/tet count mismatch.
	mism := &Mesh{Nodes: m.Nodes, Tets: m.Tets, TetLabel: nil}
	if err := mism.CheckConsistency(); err == nil {
		t.Error("label count mismatch accepted")
	}
}
