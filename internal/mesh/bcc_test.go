package mesh

import (
	"testing"

	"repro/internal/par"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func TestBCCSolidCubeConsistent(t *testing.T) {
	l := solidCube(8)
	m, err := FromLabelsBCC(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// 4x4x4 cells: interior faces 3 directions x 3*4*4 = 144 -> 4 tets
	// each; boundary faces 6*16 = 96 -> 2 tets each: 144*4+96*2 = 768.
	if m.NumTets() != 768 {
		t.Errorf("tets = %d, want 768", m.NumTets())
	}
	// Nodes: 5^3 corners + 4^3 centers = 189.
	if m.NumNodes() != 189 {
		t.Errorf("nodes = %d, want 189", m.NumNodes())
	}
	// The BCC decomposition tiles the cube exactly.
	want := 343.0 // (2*3+1)^3 with the clamped last plane
	if v := m.TotalVolume(); v < want-1e-6 || v > want+1e-6 {
		t.Errorf("volume = %v, want %v", v, want)
	}
}

func TestBCCQualityBeatsKuhn(t *testing.T) {
	l := solidCube(12)
	kuhn, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	bcc, err := FromLabelsBCC(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	qk := kuhn.Quality()
	qb := bcc.Quality()
	if qb.MeanQuality <= qk.MeanQuality {
		t.Errorf("BCC mean quality %v not better than Kuhn %v", qb.MeanQuality, qk.MeanQuality)
	}
	if qb.Degenerate != 0 {
		t.Errorf("%d degenerate BCC elements", qb.Degenerate)
	}
}

// TestBCCConnectivityMoreRegular verifies the paper's future-work
// claim: the BCC lattice narrows the node-connectivity spread that
// drives the Kuhn mesh's assembly imbalance.
func TestBCCConnectivityMoreRegular(t *testing.T) {
	l := solidCube(12)
	spread := func(m *Mesh) float64 {
		adj := m.NodeAdjacency()
		// Interior spread: compare the most- and least-connected nodes
		// among those with full stencils (exclude boundary effects by
		// using the ratio of max to median valence).
		counts := map[int]int{}
		for _, nb := range adj {
			counts[len(nb)]++
		}
		minV, maxV := 1<<30, 0
		for v := range counts {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		return float64(maxV) / float64(minV)
	}
	kuhn, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	bcc, err := FromLabelsBCC(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sb, sk := spread(bcc), spread(kuhn); sb > sk {
		t.Errorf("BCC valence spread %v wider than Kuhn %v", sb, sk)
	}
}

func TestBCCPhantomMesh(t *testing.T) {
	p := phantom.DefaultParams(24)
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	m, err := FromLabelsBCC(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// No background-labeled elements survive.
	for e, lab := range m.TetLabel {
		if lab == volume.LabelBackground {
			t.Fatalf("element %d has background label", e)
		}
	}
	vols := m.LabelVolumes()
	if vols[volume.LabelBrain] == 0 {
		t.Error("no brain elements")
	}
	// Surface extraction works on the BCC mesh too.
	s, err := m.ExtractSurface(func(lab volume.Label) bool { return lab == volume.LabelBrain })
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTris() == 0 {
		t.Error("empty brain surface")
	}
}

func TestBCCErrors(t *testing.T) {
	bad := &volume.Labels{Grid: volume.Grid{}}
	if _, err := FromLabelsBCC(bad, Options{}); err == nil {
		t.Error("invalid grid accepted")
	}
	l := solidCube(4)
	if _, err := FromLabelsBCC(l, Options{CellSize: 99}); err == nil {
		t.Error("oversized cell accepted")
	}
	if _, err := FromLabelsBCC(l, Options{CellSize: 2, Include: func(volume.Label) bool { return false }}); err == nil {
		t.Error("empty include accepted")
	}
}

// TestBCCReducesAssemblyImbalance ties the regular connectivity to the
// quantity the paper cares about: the per-rank assembly work imbalance
// under the equal-node-count decomposition.
func TestBCCReducesAssemblyImbalance(t *testing.T) {
	p := phantom.DefaultParams(32)
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	imb := func(m *Mesh) float64 {
		// Inline the fem.AssemblyWorkModel accounting to avoid an
		// import cycle (fem imports mesh): per-rank flops proportional
		// to elements touched.
		pcount := 8
		pt := par.Even(m.NumNodes(), pcount)
		flops := make([]float64, pcount)
		for _, tet := range m.Tets {
			var ranks [4]int
			nr := 0
			for _, node := range tet {
				r := pt.Owner(int(node))
				dup := false
				for i := 0; i < nr; i++ {
					if ranks[i] == r {
						dup = true
						break
					}
				}
				if !dup {
					ranks[nr] = r
					nr++
				}
			}
			for i := 0; i < nr; i++ {
				flops[ranks[i]]++
			}
		}
		max, sum := 0.0, 0.0
		for _, f := range flops {
			if f > max {
				max = f
			}
			sum += f
		}
		return max / (sum / float64(pcount))
	}
	kuhn, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	bcc, err := FromLabelsBCC(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ik, ib := imb(kuhn), imb(bcc)
	t.Logf("assembly imbalance: Kuhn %.3f, BCC %.3f", ik, ib)
	if ib > ik*1.15 {
		t.Errorf("BCC imbalance %v materially worse than Kuhn %v", ib, ik)
	}
}
