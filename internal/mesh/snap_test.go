package mesh

import (
	"math"
	"testing"

	"repro/internal/edt"
	"repro/internal/volume"
)

// sphereMesh builds a mesh of a sphere-labeled volume and returns the
// mesh, its brain-surface, and the sphere's signed distance field.
func sphereMesh(t *testing.T, n int, radius float64) (*Mesh, *TriMesh, *volume.Scalar) {
	t.Helper()
	g := volume.NewGrid(n, n, n, 1)
	l := volume.NewLabels(g)
	c := g.Center()
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if g.World(i, j, k).Dist(c) <= radius {
					l.Set(i, j, k, volume.LabelBrain)
				}
			}
		}
	}
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.ExtractSurface(func(lab volume.Label) bool { return lab == volume.LabelBrain })
	if err != nil {
		t.Fatal(err)
	}
	phi := edt.Signed(l, volume.LabelBrain, 0)
	return m, s, phi
}

func meanRadialError(m *Mesh, nodes []int32, center float64, radius float64) float64 {
	sum := 0.0
	for _, n := range nodes {
		p := m.Nodes[n]
		r := math.Sqrt((p.X-center)*(p.X-center) + (p.Y-center)*(p.Y-center) + (p.Z-center)*(p.Z-center))
		sum += math.Abs(r - radius)
	}
	return sum / float64(len(nodes))
}

func TestSnapToLevelSetReducesStaircase(t *testing.T) {
	n, radius := 32, 11.0
	m, s, phi := sphereMesh(t, n, radius)
	c := float64(n-1) / 2
	before := meanRadialError(m, s.NodeID, c, radius)
	moved := m.SnapToLevelSet(s.NodeID, phi, 2)
	if moved == 0 {
		t.Fatal("snapping moved nothing")
	}
	after := meanRadialError(m, s.NodeID, c, radius)
	if after >= before {
		t.Errorf("radial error did not improve: %v -> %v", before, after)
	}
	if after > 0.4 {
		t.Errorf("post-snap radial error %v, want < 0.4 voxels", after)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatalf("snapping broke the mesh: %v", err)
	}
}

func TestSnapThenSmoothKeepsQuality(t *testing.T) {
	_, _, _ = sphereMesh(t, 24, 8) // warm path
	m, s, phi := sphereMesh(t, 32, 11)
	m.SnapToLevelSet(s.NodeID, phi, 2)
	q := m.Quality()
	if q.Degenerate > 0 {
		t.Fatalf("%d degenerate elements after snapping", q.Degenerate)
	}
	m.Smooth(5, 0.5)
	q2 := m.Quality()
	if q2.Degenerate > 0 {
		t.Fatalf("%d degenerate elements after smoothing", q2.Degenerate)
	}
	if q2.MeanQuality < q.MeanQuality-1e-9 {
		t.Errorf("smoothing after snap degraded mean quality: %v -> %v", q.MeanQuality, q2.MeanQuality)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapRespectsMaxDist(t *testing.T) {
	m, s, phi := sphereMesh(t, 24, 8)
	// With a tiny maxDist nothing beyond the tolerance moves; with 0 it
	// defaults to 2.
	before := append([]int32(nil), s.NodeID...)
	movedTiny := m.SnapToLevelSet(before, phi, 1e-9)
	if movedTiny != 0 {
		t.Errorf("maxDist ~0 moved %d nodes", movedTiny)
	}
	// Out-of-range node ids are skipped, not panicking.
	if m.SnapToLevelSet([]int32{-1, 1 << 30}, phi, 1) != 0 {
		t.Error("bogus node ids moved something")
	}
}
