// Package mesh implements the unstructured tetrahedral mesh generator
// for labeled 3D medical images described by the paper (Ferrant et al.,
// MICCAI 1999): the volumetric counterpart of a marching-tetrahedra
// surface generator. The labeled volume is covered by a coarsened cell
// lattice; every cell inside the object set is subdivided into six
// tetrahedra in the Kuhn pattern (all cells share the same diagonal
// orientation, so faces of neighboring cells match and the global mesh
// is fully connected and consistent). Each tetrahedron carries the
// tissue label found at its centroid, so different biomechanical
// properties can be assigned per anatomical structure, and boundary
// surfaces of any label set can be extracted as consistent triangle
// meshes for the active surface algorithm.
package mesh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/volume"
)

// Mesh is an unstructured tetrahedral mesh with per-element tissue
// labels.
type Mesh struct {
	// Nodes are world-space vertex positions (mm).
	Nodes []geom.Vec3
	// Tets indexes Nodes, four per element, positively oriented.
	Tets [][4]int32
	// TetLabel is the tissue class of each element.
	TetLabel []volume.Label
}

// NumNodes returns the number of mesh vertices.
func (m *Mesh) NumNodes() int { return len(m.Nodes) }

// NumTets returns the number of tetrahedral elements.
func (m *Mesh) NumTets() int { return len(m.Tets) }

// TetGeom returns the geometry of element e.
func (m *Mesh) TetGeom(e int) geom.Tet {
	t := m.Tets[e]
	return geom.Tet{P: [4]geom.Vec3{
		m.Nodes[t[0]], m.Nodes[t[1]], m.Nodes[t[2]], m.Nodes[t[3]],
	}}
}

// TotalVolume returns the summed element volume (mm^3).
func (m *Mesh) TotalVolume() float64 {
	v := 0.0
	for e := range m.Tets {
		v += m.TetGeom(e).Volume()
	}
	return v
}

// Options configures mesh generation.
type Options struct {
	// CellSize is the edge length of each cubic cell in voxels; larger
	// cells give coarser meshes ("mesh elements that cover several image
	// pixels", as the paper puts it).
	CellSize int
	// Include selects which tissue labels belong to the meshed object.
	// nil means every non-background label.
	Include func(volume.Label) bool
}

// FromLabels generates a tetrahedral mesh of the labeled object(s).
func FromLabels(l *volume.Labels, opts Options) (*Mesh, error) {
	if err := l.Grid.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	cs := opts.CellSize
	if cs <= 0 {
		cs = 1
	}
	include := opts.Include
	if include == nil {
		include = func(lab volume.Label) bool { return lab != volume.LabelBackground }
	}
	g := l.Grid
	// Cell lattice: cells index [0, cx) x [0, cy) x [0, cz); lattice
	// points (cell corners) index [0, cx] x ...
	cx := g.NX / cs
	cy := g.NY / cs
	cz := g.NZ / cs
	if cx < 1 || cy < 1 || cz < 1 {
		return nil, fmt.Errorf("mesh: cell size %d too large for grid %v", cs, g)
	}
	lx, ly, lz := cx+1, cy+1, cz+1
	latticeIndex := func(i, j, k int) int { return (k*ly+j)*lx + i }
	nodeID := make([]int32, lx*ly*lz)
	for i := range nodeID {
		nodeID[i] = -1
	}

	m := &Mesh{}
	getNode := func(i, j, k int) int32 {
		li := latticeIndex(i, j, k)
		if nodeID[li] >= 0 {
			return nodeID[li]
		}
		// Lattice point (i,j,k) sits at voxel coordinate (i*cs, j*cs,
		// k*cs) clamped into the grid.
		vi, vj, vk := i*cs, j*cs, k*cs
		if vi > g.NX-1 {
			vi = g.NX - 1
		}
		if vj > g.NY-1 {
			vj = g.NY - 1
		}
		if vk > g.NZ-1 {
			vk = g.NZ - 1
		}
		id := int32(len(m.Nodes))
		m.Nodes = append(m.Nodes, g.World(vi, vj, vk))
		nodeID[li] = id
		return id
	}

	// cellLabel returns the majority label of the voxels in a cell.
	cellLabel := func(ci, cj, ck int) volume.Label {
		var count [256]int
		for dk := 0; dk < cs; dk++ {
			for dj := 0; dj < cs; dj++ {
				for di := 0; di < cs; di++ {
					vi, vj, vk := ci*cs+di, cj*cs+dj, ck*cs+dk
					if g.InBounds(vi, vj, vk) {
						count[l.Data[g.Index(vi, vj, vk)]]++
					}
				}
			}
		}
		best, bestN := volume.LabelBackground, -1
		for lab := 0; lab < 256; lab++ {
			if count[lab] > bestN {
				best, bestN = volume.Label(lab), count[lab]
			}
		}
		return best
	}

	// Kuhn subdivision: the six permutations of the axis order walk from
	// corner (0,0,0) to (1,1,1); all cells share the same diagonal so
	// neighbor faces match exactly.
	perms := [6][3][3]int{
		{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}},
		{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}},
		{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}},
		{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}},
		{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}},
	}

	for ck := 0; ck < cz; ck++ {
		for cj := 0; cj < cy; cj++ {
			for ci := 0; ci < cx; ci++ {
				lab := cellLabel(ci, cj, ck)
				if !include(lab) {
					continue
				}
				for _, perm := range perms {
					// Corner walk: c0 -> c0+e_a -> +e_b -> +e_c.
					var corners [4][3]int
					corners[0] = [3]int{ci, cj, ck}
					for s := 0; s < 3; s++ {
						corners[s+1] = [3]int{
							corners[s][0] + perm[s][0],
							corners[s][1] + perm[s][1],
							corners[s][2] + perm[s][2],
						}
					}
					var ids [4]int32
					for s, c := range corners {
						ids[s] = getNode(c[0], c[1], c[2])
					}
					// Ensure positive orientation.
					t := geom.Tet{P: [4]geom.Vec3{
						m.Nodes[ids[0]], m.Nodes[ids[1]], m.Nodes[ids[2]], m.Nodes[ids[3]],
					}}
					if t.SignedVolume() < 0 {
						ids[2], ids[3] = ids[3], ids[2]
					}
					// Per-tet label: sample at the centroid so cells
					// straddling tissue boundaries get refined labels.
					tetLab := l.AtWorld(geom.Tet{P: [4]geom.Vec3{
						m.Nodes[ids[0]], m.Nodes[ids[1]], m.Nodes[ids[2]], m.Nodes[ids[3]],
					}}.Centroid())
					if !include(tetLab) {
						tetLab = lab
					}
					m.Tets = append(m.Tets, ids)
					m.TetLabel = append(m.TetLabel, tetLab)
				}
			}
		}
	}
	if len(m.Tets) == 0 {
		return nil, fmt.Errorf("mesh: no cells matched the include predicate")
	}
	return m, nil
}

// NodeAdjacency returns, for each node, the sorted list of distinct
// neighbor nodes sharing an element with it. The varying list lengths
// are the connectivity imbalance the paper blames for assembly scaling.
func (m *Mesh) NodeAdjacency() [][]int32 {
	adj := make(map[int32]map[int32]bool, len(m.Nodes))
	for _, t := range m.Tets {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				if a == b {
					continue
				}
				s := adj[t[a]]
				if s == nil {
					s = map[int32]bool{}
					adj[t[a]] = s
				}
				s[t[b]] = true
			}
		}
	}
	out := make([][]int32, len(m.Nodes))
	for n, s := range adj {
		lst := make([]int32, 0, len(s))
		for v := range s {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		out[n] = lst
	}
	return out
}

// QualityStats summarizes element quality.
type QualityStats struct {
	MinQuality, MeanQuality float64
	MinVolume, MaxVolume    float64
	Degenerate              int
}

// Quality computes element quality statistics (geom.Tet.AspectQuality:
// 1 = regular, 0 = degenerate).
func (m *Mesh) Quality() QualityStats {
	st := QualityStats{MinQuality: 1e300, MinVolume: 1e300}
	sum := 0.0
	for e := range m.Tets {
		t := m.TetGeom(e)
		q := t.AspectQuality()
		v := t.Volume()
		if q <= 1e-12 {
			st.Degenerate++
		}
		if q < st.MinQuality {
			st.MinQuality = q
		}
		if v < st.MinVolume {
			st.MinVolume = v
		}
		if v > st.MaxVolume {
			st.MaxVolume = v
		}
		sum += q
	}
	if n := len(m.Tets); n > 0 {
		st.MeanQuality = sum / float64(n)
	} else {
		st.MinQuality, st.MinVolume = 0, 0
	}
	return st
}

// LabelVolumes returns the total element volume per tissue label.
func (m *Mesh) LabelVolumes() map[volume.Label]float64 {
	out := map[volume.Label]float64{}
	for e := range m.Tets {
		out[m.TetLabel[e]] += m.TetGeom(e).Volume()
	}
	return out
}
