package mesh

import (
	"repro/internal/geom"
	"repro/internal/numeric"
	"repro/internal/volume"
)

// FixedNodes returns the set of nodes that anatomy-preserving mesh
// smoothing must not move: nodes on the mesh boundary and nodes on
// interfaces between differently-labeled regions. Moving these would
// change the segmented geometry the FEM model represents.
func (m *Mesh) FixedNodes() []bool {
	fixed := make([]bool, len(m.Nodes))
	type rec struct {
		count int
		label int16 // -1 after seeing two different labels
	}
	faces := make(map[faceKey]*rec)
	for e, t := range m.Tets {
		lab := int16(m.TetLabel[e])
		for _, f := range tetFaces {
			key := makeFaceKey(t[f[0]], t[f[1]], t[f[2]])
			r := faces[key]
			if r == nil {
				faces[key] = &rec{count: 1, label: lab}
				continue
			}
			r.count++
			if r.label != lab {
				r.label = -1
			}
		}
	}
	for key, r := range faces {
		// Boundary face (count 1) or inter-tissue face (label -1).
		if r.count == 1 || r.label == -1 {
			for _, n := range key {
				fixed[n] = true
			}
		}
	}
	return fixed
}

// SnapToLevelSet moves the listed nodes onto the zero level set of the
// signed distance volume phi (negative inside the structure), walking
// each node along the distance gradient. Nodes farther than maxDist
// from the level set are left alone, and any move that would invert an
// incident element is rolled back. Snapping the brain-surface nodes of
// a marching-tetrahedra mesh onto the smooth segmentation boundary
// removes the voxel staircase from the FEM geometry; follow with
// Smooth to re-equilibrate the interior.
//
// It returns the number of nodes moved.
func (m *Mesh) SnapToLevelSet(nodes []int32, phi *volume.Scalar, maxDist float64) int {
	if maxDist <= 0 {
		maxDist = 2
	}
	incident := make([][]int32, len(m.Nodes))
	for e, t := range m.Tets {
		for _, n := range t {
			incident[n] = append(incident[n], int32(e))
		}
	}
	moved := 0
	for _, n := range nodes {
		if n < 0 || int(n) >= len(m.Nodes) {
			continue
		}
		p := m.Nodes[n]
		d := phi.SampleWorld(p)
		if numeric.Zero(d) || d < -maxDist || d > maxDist {
			continue
		}
		// Damped Newton walk to the zero level set: the trilinear
		// distance field is only piecewise smooth, so several short
		// steps beat one full-length step.
		newPos := p
		for step := 0; step < 5; step++ {
			dv := phi.SampleWorld(newPos)
			grad := phi.GradientWorld(newPos)
			if grad.NormSq() < 1e-12 {
				break
			}
			newPos = newPos.Sub(grad.Scale(0.8 * dv / grad.NormSq()))
			if dv < 0.05 && dv > -0.05 {
				break
			}
		}
		m.Nodes[n] = newPos
		ok := true
		for _, e := range incident[n] {
			if m.TetGeom(int(e)).SignedVolume() < 1e-9 {
				ok = false
				break
			}
		}
		if !ok {
			m.Nodes[n] = p
			continue
		}
		moved++
	}
	return moved
}

// Smooth performs safeguarded Laplacian smoothing: every non-fixed node
// moves a fraction lambda toward the centroid of its neighbors, and any
// move that would invert or degenerate an incident element is rolled
// back. It addresses the paper's future-work observation that "a
// tetrahedral mesh with a more regular connectivity pattern would allow
// better scaling" — the Kuhn lattice is regular in connectivity but its
// elements are far from equilateral; smoothing raises element quality
// without changing topology or anatomy.
//
// It returns the number of node moves applied across all iterations.
func (m *Mesh) Smooth(iterations int, lambda float64) int {
	if iterations <= 0 || lambda <= 0 {
		return 0
	}
	if lambda > 1 {
		lambda = 1
	}
	fixed := m.FixedNodes()
	adj := m.NodeAdjacency()
	// Incident elements per node, for the inversion safeguard.
	incident := make([][]int32, len(m.Nodes))
	for e, t := range m.Tets {
		for _, n := range t {
			incident[n] = append(incident[n], int32(e))
		}
	}
	moved := 0
	for it := 0; it < iterations; it++ {
		for n := range m.Nodes {
			if fixed[n] || len(adj[n]) == 0 {
				continue
			}
			var c geom.Vec3
			for _, nb := range adj[n] {
				c = c.Add(m.Nodes[nb])
			}
			c = c.Scale(1 / float64(len(adj[n])))
			oldPos := m.Nodes[n]
			newPos := oldPos.Lerp(c, lambda)
			m.Nodes[n] = newPos
			// Safeguard: roll back if any incident element inverts or
			// drops below a volume floor.
			ok := true
			for _, e := range incident[n] {
				if m.TetGeom(int(e)).SignedVolume() < 1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				m.Nodes[n] = oldPos
				continue
			}
			moved++
		}
	}
	return moved
}
