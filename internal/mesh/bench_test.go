package mesh

import (
	"testing"

	"repro/internal/phantom"
	"repro/internal/volume"
)

func benchPhantomLabels(n int) *volume.Labels {
	p := phantom.DefaultParams(n)
	g := volume.NewGrid(n, n, n, p.Spacing)
	return phantom.GenerateLabels(g, p)
}

func BenchmarkFromLabels48(b *testing.B) {
	l := benchPhantomLabels(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromLabels(l, Options{CellSize: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractSurface(b *testing.B) {
	l := benchPhantomLabels(48)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		b.Fatal(err)
	}
	inBrain := func(lab volume.Label) bool { return lab == volume.LabelBrain }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ExtractSurface(inBrain); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeAdjacency(b *testing.B) {
	l := benchPhantomLabels(40)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodeAdjacency()
	}
}

func BenchmarkCheckConsistency(b *testing.B) {
	l := benchPhantomLabels(40)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CheckConsistency(); err != nil {
			b.Fatal(err)
		}
	}
}
