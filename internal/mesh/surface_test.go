package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/phantom"
	"repro/internal/volume"
)

func cubeSurface(t *testing.T, n, cs int) (*Mesh, *TriMesh) {
	t.Helper()
	l := solidCube(n)
	m, err := FromLabels(l, Options{CellSize: cs})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.ExtractSurface(func(lab volume.Label) bool { return lab == volume.LabelBrain })
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestExtractSurfaceOfCube(t *testing.T) {
	_, s := cubeSurface(t, 8, 2)
	// A 4x4x4-cell cube has 6 faces x 16 squares x 2 triangles... the
	// Kuhn split puts 2 triangles per boundary square except the faces
	// crossed by cell diagonals: every square face is split into exactly
	// 2 triangles, so 6*16*2 = 192.
	if s.NumTris() != 192 {
		t.Errorf("tris = %d, want 192", s.NumTris())
	}
	// Surface vertices are the lattice boundary nodes: 5^3 - 3^3 = 98.
	if s.NumVerts() != 98 {
		t.Errorf("verts = %d, want 98", s.NumVerts())
	}
}

func TestSurfaceClosedEulerFormula(t *testing.T) {
	// For a closed genus-0 surface: V - E + F = 2.
	_, s := cubeSurface(t, 8, 2)
	edges := map[[2]int32]bool{}
	addEdge := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		edges[[2]int32{a, b}] = true
	}
	for _, tri := range s.Tris {
		addEdge(tri[0], tri[1])
		addEdge(tri[1], tri[2])
		addEdge(tri[2], tri[0])
	}
	v, e, f := s.NumVerts(), len(edges), s.NumTris()
	if v-e+f != 2 {
		t.Errorf("Euler characteristic = %d, want 2 (V=%d E=%d F=%d)", v-e+f, v, e, f)
	}
}

func TestSurfaceNormalsPointOutward(t *testing.T) {
	_, s := cubeSurface(t, 8, 2)
	c := s.Centroid()
	normals := s.VertexNormals()
	outward := 0
	for v := range s.Verts {
		dir := s.Verts[v].Sub(c)
		if normals[v].Dot(dir) > 0 {
			outward++
		}
	}
	if frac := float64(outward) / float64(len(s.Verts)); frac < 0.99 {
		t.Errorf("only %.0f%% of normals point outward", 100*frac)
	}
}

func TestSurfaceAreaOfCube(t *testing.T) {
	_, s := cubeSurface(t, 8, 2)
	// Lattice cube has side 7 (clamped last lattice plane): area 6*49.
	want := 6.0 * 49
	if math.Abs(s.Area()-want) > 1e-9 {
		t.Errorf("area = %v, want %v", s.Area(), want)
	}
}

func TestVertexNeighborsSymmetric(t *testing.T) {
	_, s := cubeSurface(t, 6, 2)
	nb := s.VertexNeighbors()
	for a, lst := range nb {
		if len(lst) == 0 {
			t.Fatalf("vertex %d has no neighbors", a)
		}
		for _, b := range lst {
			ok := false
			for _, back := range nb[b] {
				if int(back) == a {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", a, b)
			}
		}
	}
}

func TestNodeIDMapsBackToMesh(t *testing.T) {
	m, s := cubeSurface(t, 6, 2)
	for v := range s.Verts {
		node := s.NodeID[v]
		if s.Verts[v] != m.Nodes[node] {
			t.Fatalf("vertex %d position does not match mesh node %d", v, node)
		}
	}
}

func TestExtractSurfaceErrors(t *testing.T) {
	l := solidCube(4)
	m, _ := FromLabels(l, Options{CellSize: 2})
	if _, err := m.ExtractSurface(nil); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := m.ExtractSurface(func(volume.Label) bool { return false }); err == nil {
		t.Error("empty set accepted")
	}
}

func TestExtractBrainSurfaceFromPhantom(t *testing.T) {
	p := phantom.DefaultParams(24)
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	inBrain := func(lab volume.Label) bool {
		switch lab {
		case volume.LabelBrain, volume.LabelVentricle, volume.LabelTumor, volume.LabelFalx:
			return true
		}
		return false
	}
	s, err := m.ExtractSurface(inBrain)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTris() < 100 {
		t.Errorf("suspiciously small brain surface: %d tris", s.NumTris())
	}
	// The brain surface centroid should be near the volume center.
	if d := s.Centroid().Dist(g.Center()); d > 3 {
		t.Errorf("brain surface centroid %v mm from grid center", d)
	}
}

func TestSurfaceClone(t *testing.T) {
	_, s := cubeSurface(t, 6, 2)
	c := s.Clone()
	orig := s.Verts[0]
	c.Verts[0] = c.Verts[0].Add(geom.V(1, 2, 3))
	if s.Verts[0] != orig {
		t.Error("clone aliases verts")
	}
}
