package mesh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/numeric"
	"repro/internal/volume"
)

// TriMesh is a triangulated surface extracted from a tetrahedral mesh.
// Triangles are wound so their normals point out of the extracted
// region.
type TriMesh struct {
	Verts []geom.Vec3
	Tris  [][3]int32
	// NodeID maps each surface vertex back to its tetrahedral mesh node,
	// which is how surface displacements from the active surface
	// algorithm become boundary conditions of the volumetric FEM.
	NodeID []int32
}

// NumVerts returns the number of surface vertices.
func (s *TriMesh) NumVerts() int { return len(s.Verts) }

// NumTris returns the number of triangles.
func (s *TriMesh) NumTris() int { return len(s.Tris) }

// faceKey identifies a face independent of orientation.
type faceKey [3]int32

func makeFaceKey(a, b, c int32) faceKey {
	k := faceKey{a, b, c}
	sort.Slice(k[:], func(i, j int) bool { return k[i] < k[j] })
	return k
}

// tetFaces lists the four faces of a positively oriented tetrahedron
// with outward-pointing winding.
var tetFaces = [4][3]int{{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}}

// ExtractSurface returns the boundary surface of the sub-mesh whose
// element labels satisfy inSet: the faces belonging to exactly one
// in-set element. This yields the brain surface when inSet selects the
// intracranial tissues, exactly what the active surface algorithm
// needs.
func (m *Mesh) ExtractSurface(inSet func(volume.Label) bool) (*TriMesh, error) {
	if inSet == nil {
		return nil, fmt.Errorf("mesh: nil label predicate")
	}
	type faceRec struct {
		tri   [3]int32
		count int
	}
	faces := make(map[faceKey]*faceRec)
	for e, t := range m.Tets {
		if !inSet(m.TetLabel[e]) {
			continue
		}
		for _, f := range tetFaces {
			a, b, c := t[f[0]], t[f[1]], t[f[2]]
			key := makeFaceKey(a, b, c)
			if r, ok := faces[key]; ok {
				r.count++
			} else {
				faces[key] = &faceRec{tri: [3]int32{a, b, c}, count: 1}
			}
		}
	}
	// Deterministic output order: sort boundary faces by key.
	keys := make([]faceKey, 0, len(faces))
	for k, r := range faces {
		if r.count == 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})

	s := &TriMesh{}
	vertOf := map[int32]int32{}
	getVert := func(node int32) int32 {
		if v, ok := vertOf[node]; ok {
			return v
		}
		v := int32(len(s.Verts))
		s.Verts = append(s.Verts, m.Nodes[node])
		s.NodeID = append(s.NodeID, node)
		vertOf[node] = v
		return v
	}
	for _, k := range keys {
		r := faces[k]
		s.Tris = append(s.Tris, [3]int32{
			getVert(r.tri[0]), getVert(r.tri[1]), getVert(r.tri[2]),
		})
	}
	if len(s.Tris) == 0 {
		return nil, fmt.Errorf("mesh: label set has no boundary faces")
	}
	return s, nil
}

// CheckConsistency verifies the structural invariants the paper's mesh
// generator guarantees ("a fully connected and consistent tetrahedral
// mesh"): every face is shared by at most two elements, all elements
// are positively oriented and non-degenerate, and all node indices are
// in range. It returns the first violation found.
func (m *Mesh) CheckConsistency() error {
	n := int32(len(m.Nodes))
	if len(m.TetLabel) != len(m.Tets) {
		return fmt.Errorf("mesh: %d labels for %d tets", len(m.TetLabel), len(m.Tets))
	}
	faceCount := make(map[faceKey]int)
	for e, t := range m.Tets {
		for _, id := range t {
			if id < 0 || id >= n {
				return fmt.Errorf("mesh: tet %d references node %d (have %d nodes)", e, id, n)
			}
		}
		if v := m.TetGeom(e).SignedVolume(); v <= 0 {
			return fmt.Errorf("mesh: tet %d has non-positive volume %g", e, v)
		}
		for _, f := range tetFaces {
			faceCount[makeFaceKey(t[f[0]], t[f[1]], t[f[2]])]++
		}
	}
	for k, c := range faceCount {
		if c > 2 {
			return fmt.Errorf("mesh: face %v shared by %d elements", k, c)
		}
	}
	return nil
}

// Area returns the total surface area (mm^2).
func (s *TriMesh) Area() float64 {
	a := 0.0
	for _, t := range s.Tris {
		e1 := s.Verts[t[1]].Sub(s.Verts[t[0]])
		e2 := s.Verts[t[2]].Sub(s.Verts[t[0]])
		a += e1.Cross(e2).Norm() / 2
	}
	return a
}

// VertexNormals returns area-weighted per-vertex normals (unit length).
func (s *TriMesh) VertexNormals() []geom.Vec3 {
	normals := make([]geom.Vec3, len(s.Verts))
	for _, t := range s.Tris {
		e1 := s.Verts[t[1]].Sub(s.Verts[t[0]])
		e2 := s.Verts[t[2]].Sub(s.Verts[t[0]])
		fn := e1.Cross(e2) // magnitude = 2x area, direction = face normal
		for _, v := range t {
			normals[v] = normals[v].Add(fn)
		}
	}
	for i := range normals {
		normals[i] = normals[i].Normalized()
	}
	return normals
}

// VertexNeighbors returns, for each vertex, the sorted distinct
// neighbor vertices connected by a triangle edge — the stencil of the
// active surface's elastic membrane forces.
func (s *TriMesh) VertexNeighbors() [][]int32 {
	sets := make([]map[int32]bool, len(s.Verts))
	addEdge := func(a, b int32) {
		if sets[a] == nil {
			sets[a] = map[int32]bool{}
		}
		sets[a][b] = true
	}
	for _, t := range s.Tris {
		addEdge(t[0], t[1])
		addEdge(t[1], t[0])
		addEdge(t[1], t[2])
		addEdge(t[2], t[1])
		addEdge(t[2], t[0])
		addEdge(t[0], t[2])
	}
	out := make([][]int32, len(s.Verts))
	for v, set := range sets {
		lst := make([]int32, 0, len(set))
		for u := range set {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		out[v] = lst
	}
	return out
}

// Centroid returns the area-weighted surface centroid.
func (s *TriMesh) Centroid() geom.Vec3 {
	var c geom.Vec3
	total := 0.0
	for _, t := range s.Tris {
		e1 := s.Verts[t[1]].Sub(s.Verts[t[0]])
		e2 := s.Verts[t[2]].Sub(s.Verts[t[0]])
		a := e1.Cross(e2).Norm() / 2
		mid := s.Verts[t[0]].Add(s.Verts[t[1]]).Add(s.Verts[t[2]]).Scale(1.0 / 3)
		c = c.Add(mid.Scale(a))
		total += a
	}
	if numeric.Zero(total) {
		return geom.Vec3{}
	}
	return c.Scale(1 / total)
}

// Clone returns a deep copy of the surface (used by the active surface
// algorithm, which deforms vertex positions iteratively).
func (s *TriMesh) Clone() *TriMesh {
	c := &TriMesh{
		Verts:  append([]geom.Vec3(nil), s.Verts...),
		Tris:   make([][3]int32, len(s.Tris)),
		NodeID: append([]int32(nil), s.NodeID...),
	}
	copy(c.Tris, s.Tris)
	return c
}
