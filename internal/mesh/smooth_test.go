package mesh

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"

	"repro/internal/phantom"
	"repro/internal/volume"
)

func phantomMesh(t *testing.T, n int) *Mesh {
	t.Helper()
	p := phantom.DefaultParams(n)
	g := volume.NewGrid(n, n, n, p.Spacing)
	l := phantom.GenerateLabels(g, p)
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFixedNodesIncludeBoundary(t *testing.T) {
	m := phantomMesh(t, 24)
	fixed := m.FixedNodes()
	surf, err := m.ExtractSurface(func(volume.Label) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range surf.NodeID {
		if !fixed[node] {
			t.Fatalf("boundary node %d not fixed", node)
		}
	}
	// Some interior nodes must be free (otherwise smoothing is a no-op).
	free := 0
	for _, f := range fixed {
		if !f {
			free++
		}
	}
	if free == 0 {
		t.Error("no free nodes")
	}
}

func TestFixedNodesIncludeTissueInterfaces(t *testing.T) {
	// Two-material cube split at x=4: the interface plane nodes are
	// fixed.
	g := volume.NewGrid(8, 8, 8, 1)
	l := volume.NewLabels(g)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				if i < 4 {
					l.Set(i, j, k, volume.LabelBrain)
				} else {
					l.Set(i, j, k, volume.LabelCSF)
				}
			}
		}
	}
	m, err := FromLabels(l, Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	fixed := m.FixedNodes()
	for n, p := range m.Nodes {
		if p.X == 4 && !fixed[n] {
			t.Fatalf("interface node %d at %v not fixed", n, p)
		}
	}
}

func TestSmoothImprovesJitteredQuality(t *testing.T) {
	// The pristine Kuhn lattice is already at the Laplacian equilibrium
	// (every interior node sits at its neighbors' centroid), so smooth a
	// mesh whose interior nodes were displaced — the situation produced
	// by boundary snapping or by meshing deformed anatomy.
	m := phantomMesh(t, 32)
	fixed := m.FixedNodes()
	rng := rand.New(rand.NewSource(71))
	for n := range m.Nodes {
		if fixed[n] {
			continue
		}
		m.Nodes[n] = m.Nodes[n].Add(geom.V(
			rng.Float64()*0.8-0.4, rng.Float64()*0.8-0.4, rng.Float64()*0.8-0.4))
	}
	before := m.Quality()
	moved := m.Smooth(10, 0.5)
	if moved == 0 {
		t.Fatal("smoothing moved nothing")
	}
	after := m.Quality()
	if after.MeanQuality <= before.MeanQuality {
		t.Errorf("mean quality did not improve: %v -> %v", before.MeanQuality, after.MeanQuality)
	}
	if after.MinQuality < before.MinQuality {
		t.Errorf("min quality degraded: %v -> %v", before.MinQuality, after.MinQuality)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatalf("smoothing broke the mesh: %v", err)
	}
}

func TestSmoothIsStationaryOnRegularLattice(t *testing.T) {
	// On the uniform lattice smoothing must not change node positions
	// (each interior node is already its neighbors' centroid).
	m := phantomMesh(t, 24)
	before := append([]geom.Vec3(nil), m.Nodes...)
	m.Smooth(3, 0.5)
	for n := range m.Nodes {
		if m.Nodes[n].Sub(before[n]).MaxAbs() > 1e-9 {
			t.Fatalf("node %d moved on a regular lattice", n)
		}
	}
}

func TestSmoothPreservesVolumeApproximately(t *testing.T) {
	m := phantomMesh(t, 24)
	before := m.TotalVolume()
	m.Smooth(5, 0.5)
	after := m.TotalVolume()
	if math.Abs(after-before)/before > 0.02 {
		t.Errorf("smoothing changed total volume %v -> %v", before, after)
	}
}

func TestSmoothKeepsBoundaryNodes(t *testing.T) {
	m := phantomMesh(t, 24)
	fixed := m.FixedNodes()
	var savedIdx int = -1
	for n, f := range fixed {
		if f {
			savedIdx = n
			break
		}
	}
	if savedIdx < 0 {
		t.Fatal("no fixed nodes")
	}
	saved := m.Nodes[savedIdx]
	m.Smooth(5, 0.5)
	if m.Nodes[savedIdx] != saved {
		t.Error("fixed node moved")
	}
}

func TestSmoothNoOpCases(t *testing.T) {
	m := phantomMesh(t, 16)
	if m.Smooth(0, 0.5) != 0 {
		t.Error("0 iterations should be a no-op")
	}
	if m.Smooth(3, 0) != 0 {
		t.Error("lambda 0 should be a no-op")
	}
}
