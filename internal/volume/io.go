package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
)

// The on-disk format is a minimal self-describing container: an ASCII
// header line followed by little-endian binary voxel data. It plays the
// role the paper's scanner DICOM/SPL formats played — moving volumes
// between pipeline stages and tools — without external dependencies.
//
//	MVOL1 <kind> <nx> <ny> <nz> <sx> <sy> <sz> <ox> <oy> <oz>\n
//	<binary data>
//
// kind is "scalar" (float32), "labels" (uint8) or "field" (3x float32
// planes: all DX, then all DY, then all DZ).

const magic = "MVOL1"

func writeHeader(w io.Writer, kind string, g Grid) error {
	_, err := fmt.Fprintf(w, "%s %s %d %d %d %g %g %g %g %g %g\n",
		magic, kind, g.NX, g.NY, g.NZ,
		g.Spacing.X, g.Spacing.Y, g.Spacing.Z,
		g.Origin.X, g.Origin.Y, g.Origin.Z)
	return err
}

func readHeader(r *bufio.Reader) (kind string, g Grid, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", Grid{}, fmt.Errorf("volume: reading header: %w", err)
	}
	var m string
	var sx, sy, sz, ox, oy, oz float64
	n, err := fmt.Sscanf(line, "%s %s %d %d %d %g %g %g %g %g %g",
		&m, &kind, &g.NX, &g.NY, &g.NZ, &sx, &sy, &sz, &ox, &oy, &oz)
	if err != nil || n != 11 {
		return "", Grid{}, fmt.Errorf("volume: malformed header %q", line)
	}
	if m != magic {
		return "", Grid{}, fmt.Errorf("volume: bad magic %q", m)
	}
	g.Spacing = geom.V(sx, sy, sz)
	g.Origin = geom.V(ox, oy, oz)
	if err := g.Validate(); err != nil {
		return "", Grid{}, err
	}
	// Refuse to allocate for absurd declared dimensions: a malformed or
	// hostile header must not drive a multi-gigabyte allocation before
	// any data has been read. 2^30 voxels (4 GiB of float32) comfortably
	// covers clinical volumes.
	if int64(g.NX)*int64(g.NY)*int64(g.NZ) > 1<<30 {
		return "", Grid{}, fmt.Errorf("volume: declared size %dx%dx%d exceeds the 2^30-voxel limit",
			g.NX, g.NY, g.NZ)
	}
	return kind, g, nil
}

// WriteScalar serializes s to w.
func WriteScalar(w io.Writer, s *Scalar) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, "scalar", s.Grid); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, s.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadScalar deserializes a scalar volume from r.
func ReadScalar(r io.Reader) (*Scalar, error) {
	br := bufio.NewReader(r)
	kind, g, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != "scalar" {
		return nil, fmt.Errorf("volume: expected scalar, found %q", kind)
	}
	s := NewScalar(g)
	if err := binary.Read(br, binary.LittleEndian, s.Data); err != nil {
		return nil, fmt.Errorf("volume: reading scalar data: %w", err)
	}
	return s, nil
}

// WriteLabels serializes l to w.
func WriteLabels(w io.Writer, l *Labels) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, "labels", l.Grid); err != nil {
		return err
	}
	buf := make([]byte, len(l.Data))
	for i, v := range l.Data {
		buf[i] = byte(v)
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadLabels deserializes a label volume from r.
func ReadLabels(r io.Reader) (*Labels, error) {
	br := bufio.NewReader(r)
	kind, g, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != "labels" {
		return nil, fmt.Errorf("volume: expected labels, found %q", kind)
	}
	l := NewLabels(g)
	buf := make([]byte, len(l.Data))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("volume: reading label data: %w", err)
	}
	for i, b := range buf {
		l.Data[i] = Label(b)
	}
	return l, nil
}

// WriteField serializes f to w.
func WriteField(w io.Writer, f *Field) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, "field", f.Grid); err != nil {
		return err
	}
	for _, plane := range [][]float32{f.DX, f.DY, f.DZ} {
		if err := binary.Write(bw, binary.LittleEndian, plane); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadField deserializes a displacement field from r.
func ReadField(r io.Reader) (*Field, error) {
	br := bufio.NewReader(r)
	kind, g, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != "field" {
		return nil, fmt.Errorf("volume: expected field, found %q", kind)
	}
	f := NewField(g)
	for _, plane := range [][]float32{f.DX, f.DY, f.DZ} {
		if err := binary.Read(br, binary.LittleEndian, plane); err != nil {
			return nil, fmt.Errorf("volume: reading field data: %w", err)
		}
	}
	return f, nil
}

// SaveScalar writes s to the named file.
func SaveScalar(path string, s *Scalar) error {
	fp, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	if err := WriteScalar(fp, s); err != nil {
		return err
	}
	return fp.Close()
}

// LoadScalar reads a scalar volume from the named file.
func LoadScalar(path string) (*Scalar, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fp.Close()
	return ReadScalar(fp)
}

// SaveLabels writes l to the named file.
func SaveLabels(path string, l *Labels) error {
	fp, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	if err := WriteLabels(fp, l); err != nil {
		return err
	}
	return fp.Close()
}

// LoadLabels reads a label volume from the named file.
func LoadLabels(path string) (*Labels, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fp.Close()
	return ReadLabels(fp)
}

// SaveField writes f to the named file.
func SaveField(path string, f *Field) error {
	fp, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	if err := WriteField(fp, f); err != nil {
		return err
	}
	return fp.Close()
}

// LoadField reads a displacement field from the named file.
func LoadField(path string) (*Field, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fp.Close()
	return ReadField(fp)
}

// WritePGMSlice writes the axial slice k of s as an 8-bit PGM image,
// windowed to [lo, hi]. This is the reproduction's stand-in for the
// paper's 2D figure panels (Fig. 4).
func WritePGMSlice(w io.Writer, s *Scalar, k int, lo, hi float64) error {
	if k < 0 || k >= s.Grid.NZ {
		return fmt.Errorf("volume: slice %d out of range [0,%d)", k, s.Grid.NZ)
	}
	if hi <= lo {
		hi = lo + 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", s.Grid.NX, s.Grid.NY)
	for j := 0; j < s.Grid.NY; j++ {
		for i := 0; i < s.Grid.NX; i++ {
			v := (s.At(i, j, k) - lo) / (hi - lo) * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			bw.WriteByte(byte(v))
		}
	}
	return bw.Flush()
}

// SavePGMSlice writes slice k of s to the named PGM file with automatic
// windowing to the volume's min/max.
func SavePGMSlice(path string, s *Scalar, k int) error {
	lo, hi := s.MinMax()
	fp, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	if err := WritePGMSlice(fp, s, k, lo, hi); err != nil {
		return err
	}
	return fp.Close()
}
