package volume

import (
	"testing"

	"repro/internal/geom"
)

func TestLabelsSetAt(t *testing.T) {
	l := NewLabels(NewGrid(3, 3, 3, 1))
	l.Set(1, 1, 1, LabelBrain)
	if got := l.At(1, 1, 1); got != LabelBrain {
		t.Errorf("At = %v", got)
	}
	if got := l.At(5, 5, 5); got != LabelBackground {
		t.Errorf("out-of-bounds At = %v, want background", got)
	}
}

func TestLabelsAtWorldNearest(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4, Spacing: geom.V(2, 2, 2)}
	l := NewLabels(g)
	l.Set(1, 1, 1, LabelTumor)
	// World point (2.6, 2.4, 1.8) is nearest voxel (1,1,1).
	if got := l.AtWorld(geom.V(2.6, 2.4, 1.8)); got != LabelTumor {
		t.Errorf("AtWorld = %v, want tumor", got)
	}
}

func TestMaskAndCount(t *testing.T) {
	l := NewLabels(NewGrid(2, 2, 1, 1))
	l.Data[0] = LabelBrain
	l.Data[3] = LabelBrain
	m := l.Mask(LabelBrain)
	if !m[0] || m[1] || m[2] || !m[3] {
		t.Errorf("Mask = %v", m)
	}
	if got := l.Count(LabelBrain); got != 2 {
		t.Errorf("Count = %d", got)
	}
	ma := l.MaskAny(LabelBrain, LabelBackground)
	for i, v := range ma {
		if !v {
			t.Errorf("MaskAny[%d] = false", i)
		}
	}
}

func TestPresent(t *testing.T) {
	l := NewLabels(NewGrid(2, 2, 1, 1))
	l.Data[1] = LabelCSF
	l.Data[2] = LabelSkull
	got := l.Present()
	want := []Label{LabelBackground, LabelSkull, LabelCSF}
	if len(got) != len(want) {
		t.Fatalf("Present = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Present = %v, want %v", got, want)
		}
	}
}

func TestDiceCoefficient(t *testing.T) {
	a := NewLabels(NewGrid(4, 1, 1, 1))
	b := NewLabels(NewGrid(4, 1, 1, 1))
	a.Data = []Label{1, 1, 0, 0}
	b.Data = []Label{1, 0, 1, 0}
	d, err := a.DiceCoefficient(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.5 { // 2*1 / (2+2)
		t.Errorf("Dice = %v, want 0.5", d)
	}
	// Identical sets give 1.
	d, _ = a.DiceCoefficient(a, 1)
	if d != 1 {
		t.Errorf("self Dice = %v", d)
	}
	// Both empty give 1.
	d, _ = a.DiceCoefficient(b, 9)
	if d != 1 {
		t.Errorf("empty Dice = %v", d)
	}
	if _, err := a.DiceCoefficient(NewLabels(NewGrid(5, 1, 1, 1)), 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestBoundaryVoxels(t *testing.T) {
	// A 3x3x3 cube of brain inside a 5x5x5 grid: the 26 shell voxels of
	// the cube are boundary, the single center voxel is interior.
	g := NewGrid(5, 5, 5, 1)
	l := NewLabels(g)
	for k := 1; k <= 3; k++ {
		for j := 1; j <= 3; j++ {
			for i := 1; i <= 3; i++ {
				l.Set(i, j, k, LabelBrain)
			}
		}
	}
	bd := l.BoundaryVoxels(LabelBrain)
	if len(bd) != 26 {
		t.Errorf("boundary count = %d, want 26", len(bd))
	}
	center := g.Index(2, 2, 2)
	for _, idx := range bd {
		if idx == center {
			t.Error("interior voxel reported as boundary")
		}
	}
}

func TestLabelName(t *testing.T) {
	if LabelName(LabelBrain) != "brain" {
		t.Error("brain name")
	}
	if LabelName(Label(200)) != "label-200" {
		t.Error("fallback name")
	}
}

func TestLabelsClone(t *testing.T) {
	l := NewLabels(NewGrid(2, 2, 2, 1))
	l.Set(0, 0, 0, LabelSkin)
	c := l.Clone()
	c.Set(0, 0, 0, LabelCSF)
	if l.At(0, 0, 0) != LabelSkin {
		t.Error("clone aliases original")
	}
}
