package volume

// Downsample returns a copy of s reduced by an integer factor along each
// axis, using box averaging (the standard pyramid-reduction step for
// multiresolution registration). A factor <= 1 returns a clone.
func (s *Scalar) Downsample(factor int) *Scalar {
	if factor <= 1 {
		return s.Clone()
	}
	g := s.Grid
	ng := Grid{
		NX:      (g.NX + factor - 1) / factor,
		NY:      (g.NY + factor - 1) / factor,
		NZ:      (g.NZ + factor - 1) / factor,
		Spacing: g.Spacing.Scale(float64(factor)),
		Origin:  g.Origin,
	}
	// Box averaging shifts the effective sample center by (factor-1)/2
	// voxels of the fine grid; account for it in the origin so world
	// coordinates remain aligned across pyramid levels.
	half := float64(factor-1) / 2
	ng.Origin = g.Origin.Add(g.Spacing.Scale(half))
	out := NewScalar(ng)
	for k := 0; k < ng.NZ; k++ {
		for j := 0; j < ng.NY; j++ {
			for i := 0; i < ng.NX; i++ {
				sum, n := 0.0, 0
				for dk := 0; dk < factor; dk++ {
					for dj := 0; dj < factor; dj++ {
						for di := 0; di < factor; di++ {
							fi, fj, fk := i*factor+di, j*factor+dj, k*factor+dk
							if g.InBounds(fi, fj, fk) {
								sum += float64(s.Data[g.Index(fi, fj, fk)])
								n++
							}
						}
					}
				}
				if n > 0 {
					out.Data[ng.Index(i, j, k)] = float32(sum / float64(n))
				}
			}
		}
	}
	return out
}
