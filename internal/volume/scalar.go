package volume

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Scalar is a single-channel 3D image (e.g. an MR intensity volume),
// stored as float32 to keep clinical-size volumes (256x256x60 and up)
// memory-friendly. All arithmetic is done in float64.
type Scalar struct {
	Grid Grid
	Data []float32
}

// NewScalar allocates a zero-filled scalar volume on grid g.
func NewScalar(g Grid) *Scalar {
	return &Scalar{Grid: g, Data: make([]float32, g.Len())}
}

// At returns the voxel value at (i, j, k). Out-of-bounds reads return 0,
// the conventional background value for MR data.
func (s *Scalar) At(i, j, k int) float64 {
	if !s.Grid.InBounds(i, j, k) {
		return 0
	}
	return float64(s.Data[s.Grid.Index(i, j, k)])
}

// Set assigns the voxel value at (i, j, k). Out-of-bounds writes are
// ignored.
func (s *Scalar) Set(i, j, k int, v float64) {
	if !s.Grid.InBounds(i, j, k) {
		return
	}
	s.Data[s.Grid.Index(i, j, k)] = float32(v)
}

// Fill sets every voxel to v.
func (s *Scalar) Fill(v float64) {
	f := float32(v)
	for i := range s.Data {
		s.Data[i] = f
	}
}

// Clone returns a deep copy of s.
func (s *Scalar) Clone() *Scalar {
	c := &Scalar{Grid: s.Grid, Data: make([]float32, len(s.Data))}
	copy(c.Data, s.Data)
	return c
}

// SampleVoxel trilinearly interpolates the volume at continuous voxel
// coordinates (x, y, z). Samples outside the grid return 0.
func (s *Scalar) SampleVoxel(x, y, z float64) float64 {
	if x < 0 || y < 0 || z < 0 ||
		x > float64(s.Grid.NX-1) || y > float64(s.Grid.NY-1) || z > float64(s.Grid.NZ-1) {
		return 0
	}
	i0 := int(x)
	j0 := int(y)
	k0 := int(z)
	// Clamp the upper corner so that samples exactly on the last plane
	// interpolate within bounds.
	if i0 > s.Grid.NX-2 {
		i0 = s.Grid.NX - 2
	}
	if j0 > s.Grid.NY-2 {
		j0 = s.Grid.NY - 2
	}
	if k0 > s.Grid.NZ-2 {
		k0 = s.Grid.NZ - 2
	}
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if k0 < 0 {
		k0 = 0
	}
	fx := x - float64(i0)
	fy := y - float64(j0)
	fz := z - float64(k0)
	idx := s.Grid.Index(i0, j0, k0)
	nx, nxy := s.Grid.NX, s.Grid.NX*s.Grid.NY
	d := s.Data
	c000 := float64(d[idx])
	c100 := float64(d[idx+1])
	c010 := float64(d[idx+nx])
	c110 := float64(d[idx+nx+1])
	c001 := float64(d[idx+nxy])
	c101 := float64(d[idx+nxy+1])
	c011 := float64(d[idx+nxy+nx])
	c111 := float64(d[idx+nxy+nx+1])
	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

// SampleVoxelPoint trilinearly interpolates the volume at a continuous
// voxel-space point.
func (s *Scalar) SampleVoxelPoint(p geom.VoxelPoint) float64 {
	return s.SampleVoxel(p.X, p.Y, p.Z)
}

// SampleWorld trilinearly interpolates the volume at world point p (mm).
func (s *Scalar) SampleWorld(p geom.Vec3) float64 {
	return s.SampleVoxelPoint(s.Grid.Voxel(p))
}

// GradientWorld returns the central-difference image gradient at world
// point p, in intensity units per millimetre.
func (s *Scalar) GradientWorld(p geom.Vec3) geom.Vec3 {
	hx, hy, hz := s.Grid.Spacing.X, s.Grid.Spacing.Y, s.Grid.Spacing.Z
	return geom.V(
		(s.SampleWorld(p.Add(geom.V(hx, 0, 0)))-s.SampleWorld(p.Sub(geom.V(hx, 0, 0))))/(2*hx),
		(s.SampleWorld(p.Add(geom.V(0, hy, 0)))-s.SampleWorld(p.Sub(geom.V(0, hy, 0))))/(2*hy),
		(s.SampleWorld(p.Add(geom.V(0, 0, hz)))-s.SampleWorld(p.Sub(geom.V(0, 0, hz))))/(2*hz),
	)
}

// MinMax returns the minimum and maximum voxel values. An empty volume
// returns (0, 0).
func (s *Scalar) MinMax() (lo, hi float64) {
	if len(s.Data) == 0 {
		return 0, 0
	}
	lo, hi = float64(s.Data[0]), float64(s.Data[0])
	for _, v := range s.Data {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// Mean returns the average voxel value.
func (s *Scalar) Mean() float64 {
	if len(s.Data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Data {
		sum += float64(v)
	}
	return sum / float64(len(s.Data))
}

// Stats summarizes a scalar volume: mean, standard deviation, min, max.
type Stats struct {
	Mean, Std, Min, Max float64
	N                   int
}

// ComputeStats returns summary statistics for all voxels of s. When mask
// is non-nil, only voxels where mask is true contribute.
func (s *Scalar) ComputeStats(mask []bool) Stats {
	var st Stats
	st.Min = math.Inf(1)
	st.Max = math.Inf(-1)
	var sum, sumSq float64
	for i, v := range s.Data {
		if mask != nil && !mask[i] {
			continue
		}
		f := float64(v)
		sum += f
		sumSq += f * f
		if f < st.Min {
			st.Min = f
		}
		if f > st.Max {
			st.Max = f
		}
		st.N++
	}
	if st.N == 0 {
		return Stats{}
	}
	st.Mean = sum / float64(st.N)
	variance := sumSq/float64(st.N) - st.Mean*st.Mean
	if variance > 0 {
		st.Std = math.Sqrt(variance)
	}
	return st
}

// AbsDiff returns a volume holding |s - t| voxelwise. It returns an
// error when the shapes differ.
func (s *Scalar) AbsDiff(t *Scalar) (*Scalar, error) {
	if !s.Grid.SameShape(t.Grid) {
		return nil, fmt.Errorf("volume: shape mismatch %v vs %v", s.Grid, t.Grid)
	}
	out := NewScalar(s.Grid)
	for i := range s.Data {
		d := float64(s.Data[i]) - float64(t.Data[i])
		out.Data[i] = float32(math.Abs(d))
	}
	return out, nil
}

// SmoothGaussian returns a separably Gaussian-smoothed copy of s with
// standard deviation sigma (in voxels). A sigma of 0 returns a clone.
func (s *Scalar) SmoothGaussian(sigma float64) *Scalar {
	if sigma <= 0 {
		return s.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		x := float64(i - radius)
		kernel[i] = math.Exp(-x * x / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}

	g := s.Grid
	src := s.Clone()
	dst := NewScalar(g)
	// Pass along x.
	convolveAxis(src, dst, kernel, radius, 0)
	// Pass along y.
	convolveAxis(dst, src, kernel, radius, 1)
	// Pass along z.
	convolveAxis(src, dst, kernel, radius, 2)
	return dst
}

// convolveAxis convolves src with kernel along the given axis (0=x, 1=y,
// 2=z) writing to dst, with clamp-to-edge boundary handling.
func convolveAxis(src, dst *Scalar, kernel []float64, radius, axis int) {
	g := src.Grid
	n := [3]int{g.NX, g.NY, g.NZ}
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				acc := 0.0
				for t := -radius; t <= radius; t++ {
					ci, cj, ck := i, j, k
					switch axis {
					case 0:
						ci = clampInt(i+t, 0, n[0]-1)
					case 1:
						cj = clampInt(j+t, 0, n[1]-1)
					default:
						ck = clampInt(k+t, 0, n[2]-1)
					}
					acc += kernel[t+radius] * float64(src.Data[g.Index(ci, cj, ck)])
				}
				dst.Data[g.Index(i, j, k)] = float32(acc)
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
