package volume

import (
	"bytes"
	"testing"
)

// FuzzReadScalar hardens the MVOL parser against malformed input: any
// byte stream must either parse into a structurally valid volume or
// return an error — never panic or allocate absurdly.
func FuzzReadScalar(f *testing.F) {
	// Seed with a valid volume and a few mutations.
	s := NewScalar(NewGrid(2, 3, 4, 1))
	s.Set(1, 2, 3, 7)
	var buf bytes.Buffer
	if err := WriteScalar(&buf, s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MVOL1 scalar 2 2 2 1 1 1 0 0 0\n"))
	f.Add([]byte("MVOL1 labels 1 1 1 1 1 1 0 0 0\nx"))
	f.Add([]byte("garbage"))
	f.Add([]byte("MVOL1 scalar 1000000 1000000 1000000 1 1 1 0 0 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd allocations from huge declared dims: the
		// reader allocates NX*NY*NZ floats, so cap the accepted header
		// sizes here the same way a server would.
		if len(data) > 1<<20 {
			return
		}
		vol, err := ReadScalar(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := vol.Grid.Validate(); err != nil {
			t.Fatalf("parser returned invalid grid: %v", err)
		}
		if len(vol.Data) != vol.Grid.Len() {
			t.Fatalf("data length %d != grid %d", len(vol.Data), vol.Grid.Len())
		}
	})
}

// FuzzReadLabels mirrors FuzzReadScalar for the label parser.
func FuzzReadLabels(f *testing.F) {
	l := NewLabels(NewGrid(2, 2, 2, 1))
	l.Set(0, 1, 1, LabelBrain)
	var buf bytes.Buffer
	if err := WriteLabels(&buf, l); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MVOL1 labels 2 2 2 1 1 1 0 0 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		vol, err := ReadLabels(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(vol.Data) != vol.Grid.Len() {
			t.Fatalf("data length %d != grid %d", len(vol.Data), vol.Grid.Len())
		}
	})
}
