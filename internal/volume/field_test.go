package volume

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestFieldSetAt(t *testing.T) {
	f := NewField(NewGrid(3, 3, 3, 1))
	f.Set(1, 1, 1, geom.V(0.5, -0.25, 2))
	got := f.At(1, 1, 1)
	if got.Sub(geom.V(0.5, -0.25, 2)).MaxAbs() > 1e-6 {
		t.Errorf("At = %v", got)
	}
	if f.At(-1, 0, 0) != (geom.Vec3{}) {
		t.Error("out-of-bounds At should be zero")
	}
}

func TestFieldMagnitudes(t *testing.T) {
	f := NewField(NewGrid(2, 1, 1, 1))
	f.Set(0, 0, 0, geom.V(3, 4, 0)) // magnitude 5
	f.Set(1, 0, 0, geom.V(0, 0, 1)) // magnitude 1
	if m := f.MaxMagnitude(); math.Abs(m-5) > 1e-6 {
		t.Errorf("MaxMagnitude = %v", m)
	}
	if m := f.MeanMagnitude(nil); math.Abs(m-3) > 1e-6 {
		t.Errorf("MeanMagnitude = %v", m)
	}
	mask := []bool{false, true}
	if m := f.MeanMagnitude(mask); math.Abs(m-1) > 1e-6 {
		t.Errorf("masked MeanMagnitude = %v", m)
	}
}

func TestRMSDifference(t *testing.T) {
	a := NewField(NewGrid(2, 1, 1, 1))
	b := NewField(NewGrid(2, 1, 1, 1))
	a.Set(0, 0, 0, geom.V(1, 0, 0))
	b.Set(0, 0, 0, geom.V(0, 0, 0))
	rms, err := a.RMSDifference(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.5)
	if math.Abs(rms-want) > 1e-6 {
		t.Errorf("RMS = %v, want %v", rms, want)
	}
	if _, err := a.RMSDifference(NewField(NewGrid(3, 1, 1, 1)), nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestWarpScalarWithConstantShift(t *testing.T) {
	// A constant displacement of +2mm in x means the warped image at p
	// shows src at p+2: i.e. the content moves left by 2.
	g := NewGrid(10, 4, 4, 1)
	src := NewScalar(g)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 10; i++ {
				src.Set(i, j, k, float64(i))
			}
		}
	}
	f := NewField(g)
	for i := range f.DX {
		f.DX[i] = 2
	}
	out := f.WarpScalar(src)
	// Interior voxel (3,2,2) should now hold src value at x=5.
	if got := out.At(3, 2, 2); math.Abs(got-5) > 1e-5 {
		t.Errorf("warped value = %v, want 5", got)
	}
}

func TestWarpLabelsNearest(t *testing.T) {
	g := NewGrid(6, 3, 3, 1)
	src := NewLabels(g)
	src.Set(4, 1, 1, LabelTumor)
	f := NewField(g)
	for i := range f.DX {
		f.DX[i] = 2
	}
	out := f.WarpLabels(src)
	if out.At(2, 1, 1) != LabelTumor {
		t.Error("label did not move as expected")
	}
}

func TestFieldSampleWorldInterpolates(t *testing.T) {
	g := NewGrid(3, 3, 3, 1)
	f := NewField(g)
	f.Set(0, 0, 0, geom.V(0, 0, 0))
	f.Set(1, 0, 0, geom.V(2, 0, 0))
	got := f.SampleWorld(geom.V(0.5, 0, 0))
	if math.Abs(got.X-1) > 1e-6 {
		t.Errorf("SampleWorld = %v, want x=1", got)
	}
}

func TestComposeOfConstantFields(t *testing.T) {
	g := NewGrid(8, 8, 8, 1)
	f := NewField(g)
	h := NewField(g)
	for i := range f.DX {
		f.DX[i] = 1
		h.DY[i] = 2
	}
	c := f.Compose(h)
	// Away from boundary the composition is (1, 2, 0).
	got := c.At(3, 3, 3)
	if got.Sub(geom.V(1, 2, 0)).MaxAbs() > 1e-5 {
		t.Errorf("Compose = %v, want (1,2,0)", got)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	// A smooth forward field composed with its inverse should be near
	// zero in the interior.
	g := NewGrid(16, 16, 16, 1)
	f := NewField(g)
	c := g.Center()
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				p := g.World(i, j, k)
				w := math.Exp(-p.Sub(c).NormSq() / 30)
				f.Set(i, j, k, geom.V(1.5*w, -w, 0.5*w))
			}
		}
	}
	inv := f.Invert(8)
	for k := 4; k < 12; k++ {
		for j := 4; j < 12; j++ {
			for i := 4; i < 12; i++ {
				q := g.World(i, j, k)
				v := inv.At(i, j, k)
				// q + v should map back through f to q: v + u(q+v) ~ 0.
				res := v.Add(f.SampleWorld(q.Add(v)))
				if res.Norm() > 0.05 {
					t.Fatalf("inverse residual %v at (%d,%d,%d)", res.Norm(), i, j, k)
				}
			}
		}
	}
}

func TestInvertOfZeroIsZero(t *testing.T) {
	f := NewField(NewGrid(6, 6, 6, 1))
	inv := f.Invert(0) // 0 iterations defaults to 5
	if inv.MaxMagnitude() != 0 {
		t.Error("inverse of zero field not zero")
	}
}

func TestComposeEquivalentToSequentialWarp(t *testing.T) {
	g := NewGrid(12, 12, 12, 1)
	src := NewScalar(g)
	for k := 0; k < 12; k++ {
		for j := 0; j < 12; j++ {
			for i := 0; i < 12; i++ {
				src.Set(i, j, k, float64(i*i)+2*float64(j)+float64(k))
			}
		}
	}
	f := NewField(g)
	h := NewField(g)
	for i := range f.DX {
		f.DX[i] = 0.5
		h.DZ[i] = 0.75
	}
	seq := h.WarpScalar(f.WarpScalar(src))
	direct := f.Compose(h).WarpScalar(src)
	// Compare in the interior (boundary handling differs where samples
	// leave the grid).
	for k := 3; k < 9; k++ {
		for j := 3; j < 9; j++ {
			for i := 3; i < 9; i++ {
				a, b := seq.At(i, j, k), direct.At(i, j, k)
				if math.Abs(a-b) > 0.51 {
					// Sequential warping loses accuracy through double
					// interpolation; composition should stay close.
					t.Fatalf("warp mismatch at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
			}
		}
	}
}
