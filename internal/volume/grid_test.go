package volume

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestGridIndexRoundTrip(t *testing.T) {
	g := NewGrid(7, 5, 3, 1)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				idx := g.Index(i, j, k)
				ri, rj, rk := g.Coords(idx)
				if ri != i || rj != j || rk != k {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, idx, ri, rj, rk)
				}
			}
		}
	}
}

func TestGridIndexIsBijection(t *testing.T) {
	g := NewGrid(4, 6, 5, 1)
	seen := make([]bool, g.Len())
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				idx := g.Index(i, j, k)
				if idx < 0 || idx >= g.Len() {
					t.Fatalf("index out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("index %d assigned twice", idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestWorldVoxelRoundTrip(t *testing.T) {
	g := Grid{NX: 10, NY: 12, NZ: 8, Spacing: geom.V(0.9, 1.1, 2.5), Origin: geom.V(-30, 5, 12)}
	f := func(x, y, z float64) bool {
		p := geom.V(math.Mod(x, 1e4), math.Mod(y, 1e4), math.Mod(z, 1e4))
		if !p.IsFinite() {
			return true
		}
		v := g.Voxel(p)
		back := g.World(0, 0, 0).Add(geom.V(v.X*g.Spacing.X, v.Y*g.Spacing.Y, v.Z*g.Spacing.Z))
		return back.Sub(p).MaxAbs() < 1e-9*(1+p.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestWorldOfVoxelCenters(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4, Spacing: geom.V(2, 2, 2), Origin: geom.V(1, 1, 1)}
	p := g.World(1, 2, 3)
	want := geom.V(3, 5, 7)
	if p != want {
		t.Errorf("World(1,2,3) = %v, want %v", p, want)
	}
	v := g.Voxel(want)
	if (v != geom.VoxelPoint{X: 1, Y: 2, Z: 3}) {
		t.Errorf("Voxel = %v, want (1,2,3)", v)
	}
	if v.Round() != geom.Vox(1, 2, 3) {
		t.Errorf("Round = %v, want (1,2,3)", v.Round())
	}
	if g.WorldOf(geom.Vox(1, 2, 3)) != want {
		t.Errorf("WorldOf = %v, want %v", g.WorldOf(geom.Vox(1, 2, 3)), want)
	}
	if g.IndexOf(geom.Vox(1, 2, 3)) != g.Index(1, 2, 3) {
		t.Error("IndexOf disagrees with Index")
	}
	if g.VoxelCoords(g.Index(1, 2, 3)) != geom.Vox(1, 2, 3) {
		t.Error("VoxelCoords disagrees with Coords")
	}
	if !g.Contains(geom.Vox(1, 2, 3)) || g.Contains(geom.Vox(-1, 0, 0)) {
		t.Error("Contains disagrees with InBounds")
	}
}

func TestGridCenter(t *testing.T) {
	g := NewGrid(3, 3, 3, 2)
	if c := g.Center(); c != geom.V(2, 2, 2) {
		t.Errorf("Center = %v, want (2,2,2)", c)
	}
}

func TestGridValidate(t *testing.T) {
	if err := NewGrid(4, 4, 4, 1).Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	if err := NewGrid(0, 4, 4, 1).Validate(); err == nil {
		t.Error("zero-dim grid accepted")
	}
	bad := NewGrid(4, 4, 4, 1)
	bad.Spacing.Y = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative spacing accepted")
	}
}

func TestInBounds(t *testing.T) {
	g := NewGrid(2, 3, 4, 1)
	if !g.InBounds(0, 0, 0) || !g.InBounds(1, 2, 3) {
		t.Error("corner voxels reported out of bounds")
	}
	for _, c := range [][3]int{{-1, 0, 0}, {2, 0, 0}, {0, 3, 0}, {0, 0, 4}} {
		if g.InBounds(c[0], c[1], c[2]) {
			t.Errorf("voxel %v reported in bounds", c)
		}
	}
}
