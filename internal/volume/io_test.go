package volume

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestScalarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := Grid{NX: 5, NY: 4, NZ: 3, Spacing: geom.V(0.9, 1, 2.5), Origin: geom.V(-1, 2, 3)}
	s := NewScalar(g)
	for i := range s.Data {
		s.Data[i] = float32(rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := WriteScalar(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScalar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Grid != s.Grid {
		t.Errorf("grid mismatch: %v vs %v", back.Grid, s.Grid)
	}
	for i := range s.Data {
		if back.Data[i] != s.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	g := NewGrid(4, 4, 2, 1)
	l := NewLabels(g)
	l.Set(1, 2, 1, LabelVentricle)
	l.Set(3, 3, 0, LabelSkull)
	var buf bytes.Buffer
	if err := WriteLabels(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l.Data {
		if back.Data[i] != l.Data[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestFieldRoundTrip(t *testing.T) {
	g := NewGrid(3, 3, 3, 1)
	f := NewField(g)
	f.Set(1, 1, 1, geom.V(0.25, -1, 4))
	var buf bytes.Buffer
	if err := WriteField(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadField(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(1, 1, 1).Sub(f.At(1, 1, 1)).MaxAbs() > 1e-7 {
		t.Error("field mismatch after round trip")
	}
}

func TestReadRejectsWrongKind(t *testing.T) {
	s := NewScalar(NewGrid(2, 2, 2, 1))
	var buf bytes.Buffer
	if err := WriteScalar(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLabels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ReadLabels accepted a scalar stream")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadScalar(strings.NewReader("not a volume\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadScalar(strings.NewReader("MVOL1 scalar -1 2 2 1 1 1 0 0 0\n")); err == nil {
		t.Error("negative dims accepted")
	}
	if _, err := ReadScalar(strings.NewReader("MVOL1 scalar 4 4 4 1 1 1 0 0 0\nshort")); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewScalar(NewGrid(3, 3, 3, 1))
	s.Set(1, 1, 1, 3.5)
	path := filepath.Join(dir, "vol.mvol")
	if err := SaveScalar(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScalar(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(1, 1, 1) != 3.5 {
		t.Error("file round trip mismatch")
	}
	l := NewLabels(NewGrid(2, 2, 2, 1))
	l.Set(0, 1, 0, LabelCSF)
	lpath := filepath.Join(dir, "lab.mvol")
	if err := SaveLabels(lpath, l); err != nil {
		t.Fatal(err)
	}
	lback, err := LoadLabels(lpath)
	if err != nil {
		t.Fatal(err)
	}
	if lback.At(0, 1, 0) != LabelCSF {
		t.Error("label file round trip mismatch")
	}
	f := NewField(NewGrid(2, 2, 2, 1))
	f.Set(1, 0, 1, geom.V(1, 2, 3))
	fpath := filepath.Join(dir, "field.mvol")
	if err := SaveField(fpath, f); err != nil {
		t.Fatal(err)
	}
	fback, err := LoadField(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if fback.At(1, 0, 1).Sub(geom.V(1, 2, 3)).MaxAbs() > 1e-6 {
		t.Error("field file round trip mismatch")
	}
}

func TestWritePGMSlice(t *testing.T) {
	s := NewScalar(NewGrid(4, 3, 2, 1))
	s.Set(0, 0, 0, 0)
	s.Set(3, 2, 0, 100)
	var buf bytes.Buffer
	if err := WritePGMSlice(&buf, s, 0, 0, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 3\n255\n")) {
		t.Errorf("bad PGM header: %q", out[:12])
	}
	pix := out[len("P5\n4 3\n255\n"):]
	if len(pix) != 12 {
		t.Fatalf("pixel payload = %d bytes, want 12", len(pix))
	}
	if pix[0] != 0 || pix[11] != 255 {
		t.Errorf("windowing wrong: first=%d last=%d", pix[0], pix[11])
	}
	if err := WritePGMSlice(&buf, s, 9, 0, 1); err == nil {
		t.Error("out-of-range slice accepted")
	}
}
