// Package volume implements the 3D image substrate of the pipeline:
// scalar (MR intensity) volumes, label (segmentation) volumes, dense
// displacement fields, trilinear interpolation, gradients, and
// resampling under rigid transforms and deformation fields.
//
// Volumes follow the medical-imaging convention of an anisotropic
// regular grid: integer voxel indices (i, j, k) map to world millimetre
// coordinates through a per-volume spacing and origin. All geometric
// algorithms in the pipeline (registration, meshing, FEM) operate in
// world coordinates, so that volumes of different resolution compose
// correctly.
package volume

import (
	"fmt"

	"repro/internal/geom"
)

// Grid describes the geometry of a regular 3D sampling lattice: its
// dimensions in voxels, the physical size of each voxel (mm), and the
// world coordinates of the center of voxel (0, 0, 0).
type Grid struct {
	NX, NY, NZ int
	Spacing    geom.Vec3
	Origin     geom.Vec3
}

// NewGrid returns an isotropic grid with the given dimensions and
// voxel size, origin at zero.
func NewGrid(nx, ny, nz int, spacing float64) Grid {
	return Grid{
		NX: nx, NY: ny, NZ: nz,
		Spacing: geom.V(spacing, spacing, spacing),
	}
}

// Len returns the number of voxels in the grid.
func (g Grid) Len() int { return g.NX * g.NY * g.NZ }

// Index returns the linear index of voxel (i, j, k). The x index varies
// fastest (C order with z slowest), matching the slice-by-slice layout
// of MR acquisitions.
func (g Grid) Index(i, j, k int) int { return (k*g.NY+j)*g.NX + i }

// Coords returns the (i, j, k) voxel coordinates of linear index idx.
func (g Grid) Coords(idx int) (i, j, k int) {
	i = idx % g.NX
	j = (idx / g.NX) % g.NY
	k = idx / (g.NX * g.NY)
	return
}

// InBounds reports whether (i, j, k) addresses a voxel of the grid.
func (g Grid) InBounds(i, j, k int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY && k >= 0 && k < g.NZ
}

// World returns the world coordinates (mm) of the center of voxel
// (i, j, k).
//
//lint:coordspace conversion
func (g Grid) World(i, j, k int) geom.Vec3 {
	return geom.V(
		g.Origin.X+float64(i)*g.Spacing.X,
		g.Origin.Y+float64(j)*g.Spacing.Y,
		g.Origin.Z+float64(k)*g.Spacing.Z,
	)
}

// WorldOf returns the world coordinates (mm) of the center of voxel v.
//
//lint:coordspace conversion
func (g Grid) WorldOf(v geom.Voxel) geom.Vec3 {
	return g.World(v.I, v.J, v.K)
}

// Voxel returns the continuous voxel-space coordinates of world point
// p (mm). The result is fractional: feed it to Floor/Round to obtain a
// discrete index, or to Frac for interpolation weights.
//
//lint:coordspace conversion
func (g Grid) Voxel(p geom.Vec3) geom.VoxelPoint {
	return geom.VoxelPoint{
		X: (p.X - g.Origin.X) / g.Spacing.X,
		Y: (p.Y - g.Origin.Y) / g.Spacing.Y,
		Z: (p.Z - g.Origin.Z) / g.Spacing.Z,
	}
}

// IndexOf returns the linear index of voxel v.
func (g Grid) IndexOf(v geom.Voxel) int { return g.Index(v.I, v.J, v.K) }

// VoxelCoords returns the discrete voxel coordinates of linear index
// idx (the typed counterpart of Coords).
func (g Grid) VoxelCoords(idx int) geom.Voxel {
	i, j, k := g.Coords(idx)
	return geom.Voxel{I: i, J: j, K: k}
}

// Contains reports whether voxel v addresses a voxel of the grid.
func (g Grid) Contains(v geom.Voxel) bool { return g.InBounds(v.I, v.J, v.K) }

// Extent returns the world-space size of the grid (from the center of
// the first voxel to the center of the last, plus one voxel).
func (g Grid) Extent() geom.Vec3 {
	return geom.V(
		float64(g.NX)*g.Spacing.X,
		float64(g.NY)*g.Spacing.Y,
		float64(g.NZ)*g.Spacing.Z,
	)
}

// Center returns the world coordinates of the grid center.
func (g Grid) Center() geom.Vec3 {
	return g.Origin.Add(geom.V(
		float64(g.NX-1)/2*g.Spacing.X,
		float64(g.NY-1)/2*g.Spacing.Y,
		float64(g.NZ-1)/2*g.Spacing.Z,
	))
}

// SameShape reports whether g and h have identical dimensions (spacing
// and origin may differ).
func (g Grid) SameShape(h Grid) bool {
	return g.NX == h.NX && g.NY == h.NY && g.NZ == h.NZ
}

// Validate returns an error if the grid has non-positive dimensions or
// spacing.
func (g Grid) Validate() error {
	if g.NX <= 0 || g.NY <= 0 || g.NZ <= 0 {
		return fmt.Errorf("volume: invalid grid dims %dx%dx%d", g.NX, g.NY, g.NZ)
	}
	if g.Spacing.X <= 0 || g.Spacing.Y <= 0 || g.Spacing.Z <= 0 {
		return fmt.Errorf("volume: invalid spacing %v", g.Spacing)
	}
	return nil
}

// String implements fmt.Stringer.
func (g Grid) String() string {
	return fmt.Sprintf("%dx%dx%d @ %v mm", g.NX, g.NY, g.NZ, g.Spacing)
}
