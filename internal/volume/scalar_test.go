package volume

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestScalarSetAt(t *testing.T) {
	s := NewScalar(NewGrid(3, 3, 3, 1))
	s.Set(1, 2, 0, 7)
	if got := s.At(1, 2, 0); got != 7 {
		t.Errorf("At = %v, want 7", got)
	}
	if got := s.At(-1, 0, 0); got != 0 {
		t.Errorf("out-of-bounds At = %v, want 0", got)
	}
	s.Set(10, 10, 10, 5) // must not panic
}

func TestTrilinearExactAtVoxels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewScalar(NewGrid(5, 4, 3, 1))
	for i := range s.Data {
		s.Data[i] = float32(rng.Float64() * 100)
	}
	for k := 0; k < 3; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 5; i++ {
				got := s.SampleVoxel(float64(i), float64(j), float64(k))
				want := s.At(i, j, k)
				if math.Abs(got-want) > 1e-4 {
					t.Fatalf("SampleVoxel(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestTrilinearReproducesLinearRamp(t *testing.T) {
	// f(x,y,z) = 3x + 2y - z is linear, so trilinear interpolation is
	// exact everywhere inside the grid.
	g := NewGrid(6, 6, 6, 1)
	s := NewScalar(g)
	for k := 0; k < 6; k++ {
		for j := 0; j < 6; j++ {
			for i := 0; i < 6; i++ {
				s.Set(i, j, k, 3*float64(i)+2*float64(j)-float64(k))
			}
		}
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64() * 5
		y := rng.Float64() * 5
		z := rng.Float64() * 5
		want := 3*x + 2*y - z
		if got := s.SampleVoxel(x, y, z); math.Abs(got-want) > 1e-4 {
			t.Fatalf("SampleVoxel(%v,%v,%v) = %v, want %v", x, y, z, got, want)
		}
	}
}

func TestSampleOutsideReturnsZero(t *testing.T) {
	s := NewScalar(NewGrid(3, 3, 3, 1))
	s.Fill(9)
	if got := s.SampleVoxel(-0.5, 1, 1); got != 0 {
		t.Errorf("outside sample = %v, want 0", got)
	}
	if got := s.SampleVoxel(1, 1, 2.5); got != 0 {
		t.Errorf("outside sample = %v, want 0", got)
	}
	// Exactly on the last voxel plane remains in-bounds.
	if got := s.SampleVoxel(2, 2, 2); got != 9 {
		t.Errorf("edge sample = %v, want 9", got)
	}
}

func TestSampleWorldRespectsSpacingAndOrigin(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4, Spacing: geom.V(2, 2, 2), Origin: geom.V(10, 0, 0)}
	s := NewScalar(g)
	s.Set(1, 1, 1, 42)
	if got := s.SampleWorld(geom.V(12, 2, 2)); math.Abs(got-42) > 1e-6 {
		t.Errorf("SampleWorld = %v, want 42", got)
	}
}

func TestGradientWorldOfLinearRamp(t *testing.T) {
	g := NewGrid(8, 8, 8, 1.5)
	s := NewScalar(g)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				p := g.World(i, j, k)
				s.Set(i, j, k, 2*p.X-p.Y+0.5*p.Z)
			}
		}
	}
	grad := s.GradientWorld(g.Center())
	want := geom.V(2, -1, 0.5)
	if grad.Sub(want).MaxAbs() > 1e-4 {
		t.Errorf("GradientWorld = %v, want %v", grad, want)
	}
}

func TestMinMaxMeanStats(t *testing.T) {
	s := NewScalar(NewGrid(2, 2, 1, 1))
	copy(s.Data, []float32{1, 2, 3, 4})
	lo, hi := s.MinMax()
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if m := s.Mean(); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	st := s.ComputeStats(nil)
	if st.N != 4 || st.Mean != 2.5 || st.Min != 1 || st.Max != 4 {
		t.Errorf("Stats = %+v", st)
	}
	wantStd := math.Sqrt((1.5*1.5 + 0.5*0.5 + 0.5*0.5 + 1.5*1.5) / 4)
	if math.Abs(st.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", st.Std, wantStd)
	}
}

func TestComputeStatsMasked(t *testing.T) {
	s := NewScalar(NewGrid(2, 2, 1, 1))
	copy(s.Data, []float32{1, 100, 3, 100})
	mask := []bool{true, false, true, false}
	st := s.ComputeStats(mask)
	if st.N != 2 || st.Mean != 2 || st.Max != 3 {
		t.Errorf("masked stats = %+v", st)
	}
	if st := s.ComputeStats(make([]bool, 4)); st.N != 0 {
		t.Errorf("empty-mask stats = %+v", st)
	}
}

func TestAbsDiff(t *testing.T) {
	a := NewScalar(NewGrid(2, 1, 1, 1))
	b := NewScalar(NewGrid(2, 1, 1, 1))
	a.Data[0], a.Data[1] = 5, 1
	b.Data[0], b.Data[1] = 2, 4
	d, err := a.AbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Data[0] != 3 || d.Data[1] != 3 {
		t.Errorf("AbsDiff = %v", d.Data)
	}
	if _, err := a.AbsDiff(NewScalar(NewGrid(3, 1, 1, 1))); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestSmoothGaussianPreservesConstant(t *testing.T) {
	s := NewScalar(NewGrid(8, 8, 8, 1))
	s.Fill(5)
	sm := s.SmoothGaussian(1.2)
	for i, v := range sm.Data {
		if math.Abs(float64(v)-5) > 1e-4 {
			t.Fatalf("smoothed constant changed at %d: %v", i, v)
		}
	}
}

func TestSmoothGaussianReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewScalar(NewGrid(12, 12, 12, 1))
	for i := range s.Data {
		s.Data[i] = float32(rng.NormFloat64())
	}
	sm := s.SmoothGaussian(1.5)
	if sm.ComputeStats(nil).Std >= s.ComputeStats(nil).Std {
		t.Error("smoothing did not reduce noise standard deviation")
	}
}

func TestSmoothGaussianZeroSigmaIsClone(t *testing.T) {
	s := NewScalar(NewGrid(3, 3, 3, 1))
	s.Set(1, 1, 1, 7)
	sm := s.SmoothGaussian(0)
	if sm.At(1, 1, 1) != 7 {
		t.Error("sigma=0 should clone")
	}
	sm.Set(1, 1, 1, 0)
	if s.At(1, 1, 1) != 7 {
		t.Error("clone aliases original data")
	}
}
