package volume

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Label identifies a tissue class in a segmentation. Label 0 is always
// background (air).
type Label uint8

// Canonical tissue labels used by the phantom and the pipeline. The
// actual FEM and classification code is label-agnostic; these constants
// only fix a shared vocabulary between the phantom generator, the
// material table and the reporting code.
const (
	LabelBackground Label = 0
	LabelSkin       Label = 1
	LabelSkull      Label = 2
	LabelCSF        Label = 3
	LabelBrain      Label = 4
	LabelVentricle  Label = 5
	LabelTumor      Label = 6
	LabelFalx       Label = 7
	LabelResection  Label = 8
)

// LabelName returns a human-readable name for the canonical labels.
func LabelName(l Label) string {
	switch l {
	case LabelBackground:
		return "background"
	case LabelSkin:
		return "skin"
	case LabelSkull:
		return "skull"
	case LabelCSF:
		return "csf"
	case LabelBrain:
		return "brain"
	case LabelVentricle:
		return "ventricle"
	case LabelTumor:
		return "tumor"
	case LabelFalx:
		return "falx"
	case LabelResection:
		return "resection"
	default:
		return fmt.Sprintf("label-%d", l)
	}
}

// Labels is a 3D segmentation volume: one tissue class per voxel.
type Labels struct {
	Grid Grid
	Data []Label
}

// NewLabels allocates a background-filled label volume on grid g.
func NewLabels(g Grid) *Labels {
	return &Labels{Grid: g, Data: make([]Label, g.Len())}
}

// At returns the label at voxel (i, j, k); out of bounds is background.
func (l *Labels) At(i, j, k int) Label {
	if !l.Grid.InBounds(i, j, k) {
		return LabelBackground
	}
	return l.Data[l.Grid.Index(i, j, k)]
}

// Set assigns the label at (i, j, k); out-of-bounds writes are ignored.
func (l *Labels) Set(i, j, k int, v Label) {
	if !l.Grid.InBounds(i, j, k) {
		return
	}
	l.Data[l.Grid.Index(i, j, k)] = v
}

// AtVox returns the label at voxel v; out-of-bounds reads return
// LabelBackground.
func (l *Labels) AtVox(v geom.Voxel) Label { return l.At(v.I, v.J, v.K) }

// AtWorld returns the label at the voxel nearest to world point p.
func (l *Labels) AtWorld(p geom.Vec3) Label {
	return l.AtVox(l.Grid.Voxel(p).Round())
}

// Clone returns a deep copy of l.
func (l *Labels) Clone() *Labels {
	c := &Labels{Grid: l.Grid, Data: make([]Label, len(l.Data))}
	copy(c.Data, l.Data)
	return c
}

// Mask returns a boolean volume that is true where the label equals v.
func (l *Labels) Mask(v Label) []bool {
	m := make([]bool, len(l.Data))
	for i, lab := range l.Data {
		m[i] = lab == v
	}
	return m
}

// MaskAny returns a boolean volume that is true where the label is any
// of the given classes.
func (l *Labels) MaskAny(classes ...Label) []bool {
	set := map[Label]bool{}
	for _, c := range classes {
		set[c] = true
	}
	m := make([]bool, len(l.Data))
	for i, lab := range l.Data {
		m[i] = set[lab]
	}
	return m
}

// Count returns the number of voxels with label v.
func (l *Labels) Count(v Label) int {
	n := 0
	for _, lab := range l.Data {
		if lab == v {
			n++
		}
	}
	return n
}

// Present returns the sorted set of labels occurring in the volume.
func (l *Labels) Present() []Label {
	var seen [256]bool
	for _, lab := range l.Data {
		seen[lab] = true
	}
	var out []Label
	for i, ok := range seen {
		if ok {
			out = append(out, Label(i))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// DiceCoefficient returns the Dice overlap between the voxels labeled v
// in l and in other: 2|A∩B| / (|A|+|B|). It returns 1 when both sets are
// empty, and an error on shape mismatch.
func (l *Labels) DiceCoefficient(other *Labels, v Label) (float64, error) {
	if !l.Grid.SameShape(other.Grid) {
		return 0, fmt.Errorf("volume: shape mismatch %v vs %v", l.Grid, other.Grid)
	}
	var inter, a, b int
	for i := range l.Data {
		la := l.Data[i] == v
		lb := other.Data[i] == v
		if la {
			a++
		}
		if lb {
			b++
		}
		if la && lb {
			inter++
		}
	}
	if a+b == 0 {
		return 1, nil
	}
	return 2 * float64(inter) / float64(a+b), nil
}

// BoundaryVoxels returns the linear indices of voxels with label v that
// have at least one 6-neighbor with a different label (or that lie on
// the volume boundary).
func (l *Labels) BoundaryVoxels(v Label) []int {
	var out []int
	g := l.Grid
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				if l.At(i, j, k) != v {
					continue
				}
				if l.At(i-1, j, k) != v || l.At(i+1, j, k) != v ||
					l.At(i, j-1, k) != v || l.At(i, j+1, k) != v ||
					l.At(i, j, k-1) != v || l.At(i, j, k+1) != v {
					out = append(out, g.Index(i, j, k))
				}
			}
		}
	}
	return out
}
