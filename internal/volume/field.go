package volume

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Field is a dense 3D displacement field: one world-space displacement
// vector (mm) per voxel of its grid. The pipeline uses it to carry the
// volumetric deformation computed by the biomechanical simulation and
// to warp preoperative data into the intraoperative configuration.
type Field struct {
	Grid Grid
	// DX, DY, DZ hold the displacement components, one entry per voxel.
	DX, DY, DZ []float32
}

// NewField allocates a zero displacement field on grid g.
func NewField(g Grid) *Field {
	n := g.Len()
	return &Field{
		Grid: g,
		DX:   make([]float32, n),
		DY:   make([]float32, n),
		DZ:   make([]float32, n),
	}
}

// At returns the displacement at voxel (i, j, k); zero out of bounds.
func (f *Field) At(i, j, k int) geom.Vec3 {
	if !f.Grid.InBounds(i, j, k) {
		return geom.Vec3{}
	}
	idx := f.Grid.Index(i, j, k)
	return geom.V(float64(f.DX[idx]), float64(f.DY[idx]), float64(f.DZ[idx]))
}

// Set assigns the displacement at voxel (i, j, k).
func (f *Field) Set(i, j, k int, d geom.Vec3) {
	if !f.Grid.InBounds(i, j, k) {
		return
	}
	idx := f.Grid.Index(i, j, k)
	f.DX[idx] = float32(d.X)
	f.DY[idx] = float32(d.Y)
	f.DZ[idx] = float32(d.Z)
}

// SampleWorld trilinearly interpolates the displacement at world point
// p. Outside the grid the displacement decays to zero (consistent with a
// deformation localized to the head).
func (f *Field) SampleWorld(p geom.Vec3) geom.Vec3 {
	v := f.Grid.Voxel(p)
	return geom.V(
		sampleComponent(f.Grid, f.DX, v),
		sampleComponent(f.Grid, f.DY, v),
		sampleComponent(f.Grid, f.DZ, v),
	)
}

func sampleComponent(g Grid, data []float32, v geom.VoxelPoint) float64 {
	s := Scalar{Grid: g, Data: data}
	return s.SampleVoxelPoint(v)
}

// MaxMagnitude returns the largest displacement magnitude in the field.
func (f *Field) MaxMagnitude() float64 {
	maxSq := 0.0
	for i := range f.DX {
		dx, dy, dz := float64(f.DX[i]), float64(f.DY[i]), float64(f.DZ[i])
		if m := dx*dx + dy*dy + dz*dz; m > maxSq {
			maxSq = m
		}
	}
	return math.Sqrt(maxSq)
}

// MeanMagnitude returns the average displacement magnitude. When mask is
// non-nil only voxels where mask is true contribute.
func (f *Field) MeanMagnitude(mask []bool) float64 {
	sum, n := 0.0, 0
	for i := range f.DX {
		if mask != nil && !mask[i] {
			continue
		}
		dx, dy, dz := float64(f.DX[i]), float64(f.DY[i]), float64(f.DZ[i])
		sum += math.Sqrt(dx*dx + dy*dy + dz*dz)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RMSDifference returns the root-mean-square magnitude of (f - g),
// optionally restricted to mask. It returns an error on shape mismatch.
func (f *Field) RMSDifference(g *Field, mask []bool) (float64, error) {
	if !f.Grid.SameShape(g.Grid) {
		return 0, fmt.Errorf("volume: field shape mismatch %v vs %v", f.Grid, g.Grid)
	}
	sum, n := 0.0, 0
	for i := range f.DX {
		if mask != nil && !mask[i] {
			continue
		}
		dx := float64(f.DX[i]) - float64(g.DX[i])
		dy := float64(f.DY[i]) - float64(g.DY[i])
		dz := float64(f.DZ[i]) - float64(g.DZ[i])
		sum += dx*dx + dy*dy + dz*dz
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return math.Sqrt(sum / float64(n)), nil
}

// WarpScalar resamples src through the deformation field: the output
// voxel at world point p takes the value src(p + f(p)). This is the
// standard backward-warp convention, so f should map points of the
// *deformed* (target) configuration to their preimage displacements.
// The output is defined on the field's grid.
func (f *Field) WarpScalar(src *Scalar) *Scalar {
	out := NewScalar(f.Grid)
	g := f.Grid
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				p := g.World(i, j, k)
				idx := g.Index(i, j, k)
				q := p.Add(geom.V(float64(f.DX[idx]), float64(f.DY[idx]), float64(f.DZ[idx])))
				out.Data[idx] = float32(src.SampleWorld(q))
			}
		}
	}
	return out
}

// WarpLabels resamples a label volume through the field with nearest-
// neighbor interpolation (labels must not be blended).
func (f *Field) WarpLabels(src *Labels) *Labels {
	out := NewLabels(f.Grid)
	g := f.Grid
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				p := g.World(i, j, k)
				idx := g.Index(i, j, k)
				q := p.Add(geom.V(float64(f.DX[idx]), float64(f.DY[idx]), float64(f.DZ[idx])))
				out.Data[idx] = src.AtWorld(q)
			}
		}
	}
	return out
}

// Invert approximates the inverse of a displacement field by
// fixed-point iteration: given a forward field u (p moves to p + u(p)),
// the returned field v satisfies v(q) ~= -u(q + v(q)), so that warping
// with v undoes the motion of u. For the small, smooth deformations of
// intraoperative brain shift a handful of iterations converge to
// sub-voxel accuracy.
func (f *Field) Invert(iterations int) *Field {
	if iterations <= 0 {
		iterations = 5
	}
	g := f.Grid
	out := NewField(g)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				q := g.World(i, j, k)
				var v geom.Vec3
				for it := 0; it < iterations; it++ {
					v = f.SampleWorld(q.Add(v)).Scale(-1)
				}
				out.Set(i, j, k, v)
			}
		}
	}
	return out
}

// Compose returns the field h(p) = f(p) + g(p + f(p)): applying h is
// equivalent to warping first through f then through g (both in the
// backward-warp convention).
func (f *Field) Compose(g *Field) *Field {
	out := NewField(f.Grid)
	gr := f.Grid
	for k := 0; k < gr.NZ; k++ {
		for j := 0; j < gr.NY; j++ {
			for i := 0; i < gr.NX; i++ {
				p := gr.World(i, j, k)
				d1 := f.At(i, j, k)
				d2 := g.SampleWorld(p.Add(d1))
				out.Set(i, j, k, d1.Add(d2))
			}
		}
	}
	return out
}
