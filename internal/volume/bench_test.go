package volume

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchScalar(n int, seed int64) *Scalar {
	rng := rand.New(rand.NewSource(seed))
	s := NewScalar(NewGrid(n, n, n, 1))
	for i := range s.Data {
		s.Data[i] = float32(rng.Float64() * 100)
	}
	return s
}

func BenchmarkTrilinearSample(b *testing.B) {
	s := benchScalar(64, 1)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Vec3, 1024)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*63, rng.Float64()*63, rng.Float64()*63)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		s.SampleVoxel(p.X, p.Y, p.Z)
	}
}

func BenchmarkGradientWorld(b *testing.B) {
	s := benchScalar(64, 3)
	p := geom.V(32, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GradientWorld(p)
	}
}

func BenchmarkWarpScalar64(b *testing.B) {
	s := benchScalar(64, 4)
	f := NewField(s.Grid)
	for i := range f.DX {
		f.DX[i] = 1.5
		f.DY[i] = -0.5
	}
	b.SetBytes(int64(s.Grid.Len() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WarpScalar(s)
	}
}

func BenchmarkSmoothGaussian(b *testing.B) {
	s := benchScalar(48, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SmoothGaussian(1.0)
	}
}

func BenchmarkDownsample(b *testing.B) {
	s := benchScalar(64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Downsample(2)
	}
}

func BenchmarkFieldInvert(b *testing.B) {
	f := NewField(NewGrid(32, 32, 32, 1))
	for i := range f.DX {
		f.DX[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Invert(4)
	}
}
