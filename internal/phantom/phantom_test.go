package phantom

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

func smallParams() Params {
	p := DefaultParams(32)
	p.NoiseStd = 1
	return p
}

func TestGenerateLabelsContainsAllTissues(t *testing.T) {
	p := smallParams()
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	for _, want := range []volume.Label{
		volume.LabelBackground, volume.LabelSkin, volume.LabelSkull,
		volume.LabelCSF, volume.LabelBrain, volume.LabelVentricle,
		volume.LabelTumor, volume.LabelFalx,
	} {
		if l.Count(want) == 0 {
			t.Errorf("label %s missing from phantom", volume.LabelName(want))
		}
	}
}

func TestAnatomyIsNested(t *testing.T) {
	// Walking from the volume center outward along +x must encounter
	// brain tissue before CSF before skull before skin before air.
	p := smallParams()
	p.TumorCenter = geom.V(0.35, 0.3, 0.1)
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	order := map[volume.Label]int{
		volume.LabelVentricle:  0,
		volume.LabelFalx:       0,
		volume.LabelTumor:      0,
		volume.LabelBrain:      0,
		volume.LabelCSF:        1,
		volume.LabelSkull:      2,
		volume.LabelSkin:       3,
		volume.LabelBackground: 4,
	}
	c := p.N / 2
	prev := -1
	for i := c; i < p.N; i++ {
		lab := l.At(i, c, c)
		rank, ok := order[lab]
		if !ok {
			t.Fatalf("unexpected label %d at i=%d", lab, i)
		}
		if rank < prev {
			t.Fatalf("anatomy not nested: rank %d after %d at i=%d (%s)",
				rank, prev, i, volume.LabelName(lab))
		}
		prev = rank
	}
	if prev != 4 {
		t.Error("ray never reached background")
	}
}

func TestRenderMRContrast(t *testing.T) {
	p := smallParams()
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	s := RenderMR(l, p, rand.New(rand.NewSource(5)))
	// Mean intensity inside the brain should be near its model value
	// (within partial volume + noise tolerance). The skin layer is
	// sub-voxel thin on small grids so it is only checked for ordering.
	st := s.ComputeStats(l.Mask(volume.LabelBrain))
	if want := p.Intensity[volume.LabelBrain]; math.Abs(st.Mean-want) > 0.25*want {
		t.Errorf("brain mean intensity = %v, want ~%v", st.Mean, want)
	}
	skin := s.ComputeStats(l.Mask(volume.LabelSkin))
	skull := s.ComputeStats(l.Mask(volume.LabelSkull))
	if skin.Mean <= skull.Mean {
		t.Errorf("skin (%v) should be brighter than skull (%v)", skin.Mean, skull.Mean)
	}
	// Brain and ventricle must be separable (the active surface relies
	// on edge contrast).
	b := s.ComputeStats(l.Mask(volume.LabelBrain))
	v := s.ComputeStats(l.Mask(volume.LabelVentricle))
	if math.Abs(b.Mean-v.Mean) < 30 {
		t.Errorf("brain/ventricle contrast too low: %v vs %v", b.Mean, v.Mean)
	}
}

func TestRenderMRDeterministicPerSeed(t *testing.T) {
	p := smallParams()
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	a := RenderMR(l, p, rand.New(rand.NewSource(7)))
	b := RenderMR(l, p, rand.New(rand.NewSource(7)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different volumes")
		}
	}
}

func TestBrainShiftFieldLocalizedToBrain(t *testing.T) {
	p := smallParams()
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	f := BrainShiftField(g, l, p)
	// Skull and skin voxels must not move.
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				lab := l.At(i, j, k)
				if lab == volume.LabelSkull || lab == volume.LabelSkin || lab == volume.LabelBackground {
					if f.At(i, j, k).Norm() > 1e-9 {
						t.Fatalf("non-brain voxel (%d,%d,%d, %s) moved", i, j, k, volume.LabelName(lab))
					}
				}
			}
		}
	}
	// Peak displacement is near the requested magnitude.
	if m := f.MaxMagnitude(); m < 0.5*p.ShiftMagnitude || m > 1.01*p.ShiftMagnitude {
		t.Errorf("max displacement = %v, want near %v", m, p.ShiftMagnitude)
	}
}

func TestBrainShiftFieldIsSmooth(t *testing.T) {
	p := smallParams()
	g := volume.NewGrid(p.N, p.N, p.N, p.Spacing)
	l := GenerateLabels(g, p)
	f := BrainShiftField(g, l, p)
	// Inside the brain (where the continuum deformation lives) the
	// displacement gradient must stay below 1 so the warp does not fold.
	// The brain/CSF interface under the craniotomy is excluded: the
	// surface detaching from the skull there is a real discontinuity.
	inBrain := l.MaskAny(volume.LabelBrain, volume.LabelVentricle,
		volume.LabelTumor, volume.LabelFalx)
	maxGrad := 0.0
	for k := 1; k < g.NZ; k++ {
		for j := 1; j < g.NY; j++ {
			for i := 1; i < g.NX; i++ {
				if !inBrain[g.Index(i, j, k)] {
					continue
				}
				d0 := f.At(i, j, k)
				for _, n := range [][3]int{{i - 1, j, k}, {i, j - 1, k}, {i, j, k - 1}} {
					if !inBrain[g.Index(n[0], n[1], n[2])] {
						continue
					}
					dn := f.At(n[0], n[1], n[2])
					grad := d0.Sub(dn).Norm() / p.Spacing
					if grad > maxGrad {
						maxGrad = grad
					}
				}
			}
		}
	}
	if maxGrad >= 1 {
		t.Errorf("deformation gradient %v >= 1: warp may fold", maxGrad)
	}
}

func TestGenerateCaseConsistency(t *testing.T) {
	c := Generate(smallParams())
	if c.Preop == nil || c.Intraop == nil || c.Truth == nil {
		t.Fatal("incomplete case")
	}
	// The intraop scan must differ from preop (deformation happened)...
	d, err := c.Preop.AbsDiff(c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if d.ComputeStats(c.BrainMask).Mean < 1 {
		t.Error("intraop scan suspiciously close to preop")
	}
	// ...but warping preop by the ground truth must reproduce intraop
	// closely outside the resection cavity.
	warped := c.Truth.WarpScalar(c.Preop)
	resection := c.IntraopLabels.Mask(volume.LabelResection)
	mask := make([]bool, len(resection))
	for i := range mask {
		mask[i] = c.BrainMask[i] && !resection[i]
	}
	wd, err := warped.AbsDiff(c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	mean := wd.ComputeStats(mask).Mean
	if mean > 8 {
		t.Errorf("ground-truth warp residual = %v, want small", mean)
	}
	// Tumor is resected in the intraop labels.
	if c.IntraopLabels.Count(volume.LabelTumor) != 0 {
		t.Error("tumor still present after resection")
	}
	if c.IntraopLabels.Count(volume.LabelResection) == 0 {
		t.Error("no resection cavity")
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Generate(smallParams())
	b := Generate(smallParams())
	for i := range a.Preop.Data {
		if a.Preop.Data[i] != b.Preop.Data[i] {
			t.Fatal("phantom generation not reproducible")
		}
	}
}
