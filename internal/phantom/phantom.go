// Package phantom generates synthetic multi-tissue head phantoms and
// simulated neurosurgical deformations.
//
// The paper evaluates on two clinical neurosurgery cases imaged with an
// intraoperative 0.5T MR scanner — data we cannot obtain. The phantom
// is the substitution: it produces (1) a preoperative-style labeled
// anatomy (skin, skull, CSF, brain, ventricles, falx, tumor), (2) an MR
// intensity volume with per-tissue contrast, partial-volume smoothing,
// scanner noise and a smooth bias field, and (3) an "intraoperative"
// scan pair produced by a known smooth brain-shift deformation plus
// tumor resection. Because the deformation is known analytically, the
// reproduction can report *quantitative* registration accuracy where
// the paper relied on visual inspection (its Figures 4 and 5).
package phantom

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/volume"
)

// Params controls phantom generation. All geometry is expressed as
// fractions of the grid extent so the same parameters scale from tiny
// test volumes to clinical 256x256x60 sizes.
type Params struct {
	// Grid geometry.
	N       int     // cubic grid dimension (NxNxN)
	Spacing float64 // voxel size, mm
	// Dims and SpacingVec, when set (all components positive), override
	// N and Spacing with an anisotropic non-cubic acquisition geometry —
	// e.g. the paper's typical 256x256x60 intraoperative MRI with thick
	// slices.
	Dims       [3]int
	SpacingVec geom.Vec3

	// Anatomy, as fractions of the half-extent.
	HeadRadius      float64 // outer skin ellipsoid
	SkullThickness  float64 // fraction of half-extent
	CSFThickness    float64
	VentricleRadius float64
	VentricleOffset float64 // lateral offset of each ventricle
	FalxHalfWidth   float64 // half-thickness of the interhemispheric membrane
	TumorRadius     float64
	TumorCenter     geom.Vec3 // fractional position (-1..1 of half-extent)

	// MR intensity model.
	Intensity      map[volume.Label]float64
	NoiseStd       float64 // additive Gaussian noise (intensity units)
	BiasAmplitude  float64 // multiplicative smooth bias field amplitude (0..1)
	PartialVolumeS float64 // Gaussian sigma (voxels) for partial-volume blur

	// Surgery simulation.
	ShiftMagnitude float64   // peak brain-shift displacement, mm
	ShiftSigma     float64   // Gaussian spatial scale of the shift, mm
	CraniotomyDir  geom.Vec3 // outward direction of the craniotomy site

	Seed int64
}

// DefaultParams returns parameters producing a realistic head phantom
// on an N^3 grid with 1mm voxels.
func DefaultParams(n int) Params {
	return Params{
		N:               n,
		Spacing:         1,
		HeadRadius:      0.92,
		SkullThickness:  0.07,
		CSFThickness:    0.05,
		VentricleRadius: 0.16,
		VentricleOffset: 0.18,
		FalxHalfWidth:   0.015,
		TumorRadius:     0.14,
		TumorCenter:     geom.V(0.35, 0.3, 0.1),
		Intensity: map[volume.Label]float64{
			volume.LabelBackground: 5,
			volume.LabelSkin:       200,
			volume.LabelSkull:      40,
			volume.LabelCSF:        70,
			volume.LabelBrain:      120,
			volume.LabelVentricle:  30,
			volume.LabelTumor:      170,
			volume.LabelFalx:       60,
			volume.LabelResection:  12,
		},
		NoiseStd:       3,
		BiasAmplitude:  0.05,
		PartialVolumeS: 0.6,
		ShiftMagnitude: 6,
		ShiftSigma:     0, // 0 = auto: 45% of head radius
		CraniotomyDir:  geom.V(0, 1, 0),
		Seed:           1,
	}
}

// Case is a complete synthetic neurosurgery case: a preoperative scan
// with its segmentation, an intraoperative scan after resection and
// brain shift, and the ground-truth deformation linking them.
type Case struct {
	Grid        volume.Grid
	Preop       *volume.Scalar
	PreopLabels *volume.Labels
	Intraop     *volume.Scalar
	// IntraopLabels is the deformed segmentation (with the resection
	// cavity marked), i.e. the ideal output of intraoperative tissue
	// classification.
	IntraopLabels *volume.Labels
	// Truth is the ground-truth deformation in the backward-warp
	// convention of volume.Field: Intraop(p) == Preop(p + Truth(p)) up
	// to resection, noise and interpolation.
	Truth *volume.Field
	// BrainMask is true on preoperative brain+ventricle+tumor voxels.
	BrainMask []bool
	Params    Params
}

// headGeometry evaluates the anatomy at world point p and returns its
// tissue label. The head is a set of nested ellipsoids slightly
// elongated along y (anterior-posterior), with a vertical falx plane at
// x=center splitting the cranial vault, two ventricles, and a spherical
// tumor.
type headGeometry struct {
	center  geom.Vec3
	half    float64 // half-extent, mm
	p       Params
	tumorC  geom.Vec3
	ventL   geom.Vec3
	ventR   geom.Vec3
	elongY  float64
	flatZ   float64
	headR   float64
	skullR  float64
	csfR    float64
	brainR  float64
	tumorR  float64
	ventRad float64
	falxHW  float64
	falxTop float64
}

func newHeadGeometry(g volume.Grid, p Params) *headGeometry {
	h := &headGeometry{center: g.Center(), p: p}
	ext := g.Extent()
	h.half = math.Min(ext.X, math.Min(ext.Y, ext.Z)) / 2
	h.elongY = 1.18
	h.flatZ = 0.95
	h.headR = p.HeadRadius * h.half
	h.skullR = h.headR - 0.035*h.half // thin skin layer
	h.csfR = h.skullR - p.SkullThickness*h.half
	h.brainR = h.csfR - p.CSFThickness*h.half
	h.tumorR = p.TumorRadius * h.half
	h.ventRad = p.VentricleRadius * h.half
	h.falxHW = p.FalxHalfWidth * h.half
	// The falx is anatomically ~1-2mm; on coarse grids keep it at least
	// a voxel wide so it remains representable.
	if minHW := 0.55 * g.Spacing.X; h.falxHW < minHW {
		h.falxHW = minHW
	}
	h.falxTop = 0.15 * h.half // falx extends down to z > falxTop
	h.tumorC = h.center.Add(p.TumorCenter.Scale(h.half))
	off := p.VentricleOffset * h.half
	h.ventL = h.center.Add(geom.V(-off, 0, 0))
	h.ventR = h.center.Add(geom.V(off, 0, 0))
	return h
}

// ellipsoidRadius returns the effective radial coordinate of p in the
// head's anisotropic metric; the anatomy surfaces are level sets of it.
func (h *headGeometry) ellipsoidRadius(p geom.Vec3) float64 {
	d := p.Sub(h.center)
	dx := d.X
	dy := d.Y / h.elongY
	dz := d.Z / h.flatZ
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// LabelAt returns the tissue label of world point p.
func (h *headGeometry) LabelAt(p geom.Vec3) volume.Label {
	r := h.ellipsoidRadius(p)
	if r > h.headR {
		return volume.LabelBackground
	}
	if r > h.skullR {
		return volume.LabelSkin
	}
	if r > h.csfR {
		return volume.LabelSkull
	}
	if r > h.brainR {
		return volume.LabelCSF
	}
	// Inside the brain envelope.
	if p.Dist(h.tumorC) < h.tumorR {
		return volume.LabelTumor
	}
	d := p.Sub(h.center)
	// Ventricles: elongated along y.
	for _, vc := range []geom.Vec3{h.ventL, h.ventR} {
		dv := p.Sub(vc)
		vr := math.Sqrt(dv.X*dv.X + (dv.Y/1.8)*(dv.Y/1.8) + dv.Z*dv.Z)
		if vr < h.ventRad {
			return volume.LabelVentricle
		}
	}
	// Falx cerebri: thin stiff membrane in the midsagittal plane, upper
	// part of the cranial vault only.
	if math.Abs(d.X) < h.falxHW && d.Z > -h.falxTop {
		return volume.LabelFalx
	}
	return volume.LabelBrain
}

// GenerateLabels rasterizes the anatomy onto grid g.
func GenerateLabels(g volume.Grid, p Params) *volume.Labels {
	h := newHeadGeometry(g, p)
	l := volume.NewLabels(g)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				l.Data[g.Index(i, j, k)] = h.LabelAt(g.World(i, j, k))
			}
		}
	}
	return l
}

// RenderMR synthesizes an MR intensity volume from a segmentation:
// per-tissue mean intensities, partial-volume Gaussian blur, a smooth
// multiplicative bias field, and additive Gaussian noise.
func RenderMR(l *volume.Labels, p Params, rng *rand.Rand) *volume.Scalar {
	g := l.Grid
	s := volume.NewScalar(g)
	for i, lab := range l.Data {
		s.Data[i] = float32(p.Intensity[lab])
	}
	if p.PartialVolumeS > 0 {
		s = s.SmoothGaussian(p.PartialVolumeS)
	}
	if p.BiasAmplitude > 0 || p.NoiseStd > 0 {
		c := g.Center()
		ext := g.Extent()
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					idx := g.Index(i, j, k)
					v := float64(s.Data[idx])
					if p.BiasAmplitude > 0 {
						w := g.World(i, j, k).Sub(c)
						bias := 1 + p.BiasAmplitude*math.Sin(2*math.Pi*w.X/ext.X)*
							math.Cos(2*math.Pi*w.Y/ext.Y)
						v *= bias
					}
					if p.NoiseStd > 0 {
						v += rng.NormFloat64() * p.NoiseStd
					}
					if v < 0 {
						v = 0
					}
					s.Data[idx] = float32(v)
				}
			}
		}
	}
	return s
}

// BrainShiftField builds the ground-truth deformation used to simulate
// surgery, in the backward-warp convention: the displacement stored at
// intraoperative point p points to its preoperative source. The model is
// a smooth "sinking" of the brain away from the craniotomy site (the
// paper's Figure 4b: significant sinking of the brain surface), decaying
// with distance from the craniotomy and vanishing at and beyond the
// inner skull surface so skin and skull stay fixed.
func BrainShiftField(g volume.Grid, labels *volume.Labels, p Params) *volume.Field {
	h := newHeadGeometry(g, p)
	sigma := p.ShiftSigma
	if sigma <= 0 {
		sigma = 0.45 * h.brainR
	}
	dir := p.CraniotomyDir.Normalized()
	// Craniotomy center: intersection of dir with the brain envelope.
	cranio := h.center.Add(dir.Scale(h.brainR))
	f := volume.NewField(g)
	amp := p.ShiftMagnitude
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				pt := g.World(i, j, k)
				r := h.ellipsoidRadius(pt)
				if r >= h.brainR {
					continue // skull, skin and exterior do not move
				}
				// Gaussian falloff from the craniotomy site: smooth inside
				// the brain, largest at the exposed surface. The brain
				// surface detaches from the skull under the craniotomy
				// (the dark gap of the paper's Figure 5), so the field is
				// deliberately discontinuous across the brain envelope
				// there; everywhere else the Gaussian has already decayed.
				w := math.Exp(-pt.Sub(cranio).NormSq() / (2 * sigma * sigma))
				// The brain sinks inward: displacement at the deformed
				// point looks back along +dir toward the original
				// position, so the stored (backward) displacement is
				// +dir scaled.
				f.Set(i, j, k, dir.Scale(amp*w))
			}
		}
	}
	return f
}

// GridFor returns the acquisition grid described by the parameters.
func GridFor(p Params) volume.Grid {
	if p.Dims[0] > 0 && p.Dims[1] > 0 && p.Dims[2] > 0 &&
		p.SpacingVec.X > 0 && p.SpacingVec.Y > 0 && p.SpacingVec.Z > 0 {
		return volume.Grid{
			NX: p.Dims[0], NY: p.Dims[1], NZ: p.Dims[2],
			Spacing: p.SpacingVec,
		}
	}
	return volume.NewGrid(p.N, p.N, p.N, p.Spacing)
}

// Generate builds a complete synthetic neurosurgery case.
func Generate(p Params) *Case {
	g := GridFor(p)
	rng := rand.New(rand.NewSource(p.Seed))
	labels := GenerateLabels(g, p)
	preop := RenderMR(labels, p, rng)

	truth := BrainShiftField(g, labels, p)

	// Intraoperative labels: deform the preop segmentation, then carve
	// the resection cavity where the tumor used to be (the tumor has
	// been removed; the cavity fills with air/fluid).
	intraLabels := truth.WarpLabels(labels)
	for i, lab := range intraLabels.Data {
		if lab == volume.LabelTumor {
			intraLabels.Data[i] = volume.LabelResection
		}
	}
	// Intraoperative scan: render the deformed anatomy with fresh noise
	// (the paper notes scan-to-scan MR intensity variability).
	rng2 := rand.New(rand.NewSource(p.Seed + 9973))
	intraop := RenderMR(intraLabels, p, rng2)

	return &Case{
		Grid:          g,
		Preop:         preop,
		PreopLabels:   labels,
		Intraop:       intraop,
		IntraopLabels: intraLabels,
		Truth:         truth,
		BrainMask: labels.MaskAny(volume.LabelBrain, volume.LabelVentricle,
			volume.LabelTumor, volume.LabelFalx),
		Params: p,
	}
}
