package phantom

import (
	"math/rand"

	"repro/internal/volume"
)

// StreamStep is one later intraoperative acquisition of a streaming
// case: the same anatomy re-scanned after the brain shift has grown.
type StreamStep struct {
	// ShiftMagnitude is the peak brain-shift displacement of this
	// acquisition, mm.
	ShiftMagnitude float64
	// Intraop is the simulated scan, rendered with fresh scanner noise
	// (the paper notes scan-to-scan MR intensity variability).
	Intraop *volume.Scalar
	// IntraopLabels is the deformed segmentation with the resection
	// cavity marked — the ideal classification output for this step.
	IntraopLabels *volume.Labels
	// Truth is the ground-truth deformation of this step relative to the
	// preoperative anatomy (backward-warp convention, like Case.Truth).
	Truth *volume.Field
}

// Stream is a streaming intraoperative acquisition: one baseline case
// plus a sequence of later scans of the same anatomy under a growing
// brain shift. It models the paper's sessions in which "other scans
// were acquired as the surgeon checked the progress of tumor
// resection" — the workload the incremental update path is built for.
type Stream struct {
	// Case is the baseline: the preoperative preparation and the first
	// intraoperative scan, deformed by shifts[0].
	Case *Case
	// Steps are the later acquisitions, one per remaining shift
	// magnitude, in acquisition order.
	Steps []StreamStep
}

// GenerateStream builds a streaming case: the preoperative anatomy is
// generated once, the first shift magnitude becomes the baseline
// intraoperative scan (Stream.Case), and every remaining magnitude
// yields one later acquisition of the same anatomy. All steps share the
// preoperative segmentation, so registrations of successive steps are
// directly comparable; each step's scan carries its own noise
// realization. At least one shift magnitude is required.
func GenerateStream(p Params, shifts []float64) *Stream {
	if len(shifts) == 0 {
		panic("phantom: GenerateStream requires at least one shift magnitude")
	}
	base := p
	base.ShiftMagnitude = shifts[0]
	c := Generate(base)
	st := &Stream{Case: c}
	for i, mag := range shifts[1:] {
		sp := p
		sp.ShiftMagnitude = mag
		truth := BrainShiftField(c.Grid, c.PreopLabels, sp)
		intraLabels := truth.WarpLabels(c.PreopLabels)
		for j, lab := range intraLabels.Data {
			if lab == volume.LabelTumor {
				intraLabels.Data[j] = volume.LabelResection
			}
		}
		// Offset the noise seed per step the same way Generate offsets it
		// for the baseline scan, so no two scans share a realization.
		rng := rand.New(rand.NewSource(p.Seed + 9973 + int64(i+1)*7919))
		st.Steps = append(st.Steps, StreamStep{
			ShiftMagnitude: mag,
			Intraop:        RenderMR(intraLabels, sp, rng),
			IntraopLabels:  intraLabels,
			Truth:          truth,
		})
	}
	return st
}
