package solver

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// cancellingPC wraps a preconditioner and cancels a context after a
// fixed number of applications — a deterministic way to cancel in the
// middle of a restart cycle without racing a timer.
type cancellingPC struct {
	inner   Preconditioner
	applies int
	after   int
	cancel  context.CancelFunc
}

func (p *cancellingPC) Apply(r, z []float64) {
	p.applies++
	if p.applies == p.after {
		p.cancel()
	}
	p.inner.Apply(r, z)
}

func (p *cancellingPC) Name() string { return "cancelling(" + p.inner.Name() + ")" }

func TestGMRESContextPreCancelled(t *testing.T) {
	a := laplacian1D(50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, stats, err := GMRESContext(ctx, a, b, nil, nil, Options{Tol: 1e-12})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if x == nil {
		t.Error("no partial iterate returned")
	}
	if stats.Converged {
		t.Error("cancelled solve reported convergence")
	}
}

func TestGMRESContextCancelAbortsWithinOneRestartCycle(t *testing.T) {
	// A 3D Laplacian large enough that an unpreconditioned GMRES(5)
	// needs many restart cycles at a tight tolerance.
	a := laplacian3D(10, 10, 10)
	n := a.N
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	const restart = 5
	opts := Options{Tol: 1e-10, MaxIter: 10000, Restart: restart}

	// Reference: how many iterations the uncancelled solve takes.
	_, ref, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Iterations <= 3*restart {
		t.Skipf("reference solve converged in %d iterations; too easy to observe cancellation", ref.Iterations)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel mid-way through the first restart cycle (the initial
	// residual costs one apply, each inner iteration one more).
	pc := &cancellingPC{inner: IdentityPC{}, after: restart, cancel: cancel}
	_, stats, err := GMRESContext(ctx, a, b, nil, pc, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abort must land at the next restart boundary: at most the
	// remainder of the interrupted cycle plus none of the next one.
	if stats.Iterations > 2*restart {
		t.Errorf("solver ran %d iterations after cancellation; want <= %d (one restart cycle)",
			stats.Iterations, 2*restart)
	}
}

func TestCGContextPreCancelled(t *testing.T) {
	a := laplacian1D(50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := CGContext(ctx, a, b, nil, nil, Options{Tol: 1e-12})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Converged {
		t.Error("cancelled solve reported convergence")
	}
}
