package solver

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// TestGMRESRestartsCounted forces multiple restart cycles with a tiny
// Krylov subspace and checks the health counters see them.
func TestGMRESRestartsCounted(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 11)
	opts := Options{Tol: 1e-10, MaxIter: 2000, Restart: 5}
	_, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st)
	}
	if st.Restarts == 0 {
		t.Errorf("Restarts = 0 with Restart=5 on a %d-dof system needing %d iterations",
			a.N, st.Iterations)
	}
	if st.Diverged {
		t.Error("a converging Laplacian solve must not be flagged diverged")
	}
}

func TestGMRESSingleCycleHasNoRestarts(t *testing.T) {
	a := laplacian1D(20)
	b := randomRHS(20, 3)
	opts := Options{Tol: 1e-10, MaxIter: 200, Restart: 60}
	_, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st)
	}
	// Converging within the first Krylov cycle (and its confirming
	// zero-iteration pass) is not a restart.
	if st.Restarts != 0 {
		t.Errorf("Restarts = %d for a single-cycle solve, want 0", st.Restarts)
	}
}

// TestGMRESStagnationDetected runs GMRES(1) on a circular-shift
// permutation matrix — the textbook case where restarted GMRES makes
// zero progress until the subspace spans the whole cycle — and checks
// the stagnation counter sees the flat-lined cycles.
func TestGMRESStagnationDetected(t *testing.T) {
	n := 16
	bld := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.Add(i, (i+1)%n, 1)
	}
	a := bld.Build()
	b := make([]float64, n)
	b[0] = 1
	opts := Options{Tol: 1e-10, MaxIter: 8, Restart: 1}
	_, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Fatalf("GMRES(1) cannot converge on a length-%d shift cycle in %d iterations", n, opts.MaxIter)
	}
	if st.StagnatedCycles == 0 {
		t.Errorf("StagnatedCycles = 0 on a fully stagnant solve (final %g, entry %g)",
			st.FinalResRel, st.EntryResRel)
	}
}

// TestGMRESSolveEventEmitted checks the per-solve convergence event
// reaches the context's flight recorder with the health attributes.
func TestGMRESSolveEventEmitted(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 17)
	rec := obs.NewFlightRecorder(32)
	ctx := obs.WithFlightRecorder(context.Background(), rec)
	opts := Options{Tol: 1e-8, MaxIter: 500, Restart: 10}
	_, st, err := GMRESContext(ctx, a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ev *obs.FlightRecord
	for _, r := range rec.Snapshot() {
		if r.Kind == "event" && r.Name == obs.EventSolverSolve {
			cp := r
			ev = &cp
		}
	}
	if ev == nil {
		t.Fatalf("no %s event recorded; records: %d", obs.EventSolverSolve, rec.Len())
	}
	if got := ev.Attrs["iterations"]; got != float64(st.Iterations) && got != st.Iterations {
		t.Errorf("event iterations = %v, want %d", got, st.Iterations)
	}
	if got := ev.Attrs["converged"]; got != st.Converged {
		t.Errorf("event converged = %v, want %v", got, st.Converged)
	}
	if got := ev.Attrs["warm_started"]; got != false {
		t.Errorf("event warm_started = %v, want false", got)
	}
	if _, ok := ev.Attrs["final_rel_residual"]; !ok {
		t.Error("event missing final_rel_residual")
	}
	if _, ok := ev.Attrs["restarts"]; !ok {
		t.Error("event missing restarts")
	}
}

// TestGMRESWarmEventMarksWarmStart checks the warm entry point stamps
// the event and stats with the warm-start provenance.
func TestGMRESWarmEventMarksWarmStart(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 19)
	opts := Options{Tol: 1e-9, MaxIter: 500, Restart: 20}
	x, _, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder(32)
	ctx := obs.WithFlightRecorder(context.Background(), rec)
	_, st, err := GMRESWarmContext(ctx, a, b, x, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.WarmStarted {
		t.Error("Stats.WarmStarted = false from GMRESWarmContext")
	}
	if st.EntryResRel > 0.01 {
		t.Errorf("EntryResRel = %g seeding with the exact solution, want ~0", st.EntryResRel)
	}
	found := false
	for _, r := range rec.Snapshot() {
		if r.Kind == "event" && r.Name == obs.EventSolverSolve && r.Attrs["warm_started"] == true {
			found = true
		}
	}
	if !found {
		t.Error("no solver.solve event with warm_started=true recorded")
	}
}
