package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/sparse"
)

// laplacian1D builds the SPD tridiagonal matrix of the 1D Poisson
// problem: 2 on the diagonal, -1 off-diagonal.
func laplacian1D(n int) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.Build()
}

// laplacian3D builds the SPD 7-point stencil matrix on an nx x ny x nz
// grid — a realistic stand-in for the FEM stiffness structure.
func laplacian3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	b := sparse.NewBuilder(n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				c := idx(i, j, k)
				b.Add(c, c, 6)
				if i > 0 {
					b.Add(c, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					b.Add(c, idx(i+1, j, k), -1)
				}
				if j > 0 {
					b.Add(c, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					b.Add(c, idx(i, j+1, k), -1)
				}
				if k > 0 {
					b.Add(c, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					b.Add(c, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return b.Build()
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(x, r)
	max := 0.0
	for i := range r {
		if d := math.Abs(b[i] - r[i]); d > max {
			max = d
		}
	}
	return max
}

func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func TestGMRESSolvesTridiagonal(t *testing.T) {
	a := laplacian1D(50)
	b := randomRHS(50, 1)
	opts := DefaultOptions()
	opts.Tol = 1e-10
	x, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st)
	}
	if r := residual(a, x, b); r > 1e-6 {
		t.Errorf("residual = %v", r)
	}
}

func TestGMRESSolves3DLaplacian(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 2)
	opts := DefaultOptions()
	opts.Tol = 1e-9
	x, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st)
	}
	if r := residual(a, x, b); r > 1e-5 {
		t.Errorf("residual = %v", r)
	}
}

func TestGMRESWithPreconditioners(t *testing.T) {
	a := laplacian3D(7, 7, 7)
	b := randomRHS(a.N, 3)
	opts := DefaultOptions()
	opts.Tol = 1e-9

	baseline, stNone, err := GMRES(a, b, nil, IdentityPC{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []Preconditioner{
		NewJacobi(a),
		mustBlockJacobi(t, a, par.Even(a.N, 1)),
		mustBlockJacobi(t, a, par.Even(a.N, 4)),
		mustBlockJacobi(t, a, par.Even(a.N, 16)),
	} {
		x, st, err := GMRES(a, b, nil, pc, opts)
		if err != nil {
			t.Fatalf("%s: %v", pc.Name(), err)
		}
		if !st.Converged {
			t.Fatalf("%s: did not converge: %v", pc.Name(), st)
		}
		if r := residual(a, x, b); r > 1e-4 {
			t.Errorf("%s: residual = %v", pc.Name(), r)
		}
		for i := range x {
			if math.Abs(x[i]-baseline[i]) > 1e-4 {
				t.Fatalf("%s: solution differs from baseline at %d", pc.Name(), i)
			}
		}
	}
	// Single-block ILU(0) of the full matrix should converge in far
	// fewer iterations than unpreconditioned GMRES.
	ilu := mustBlockJacobi(t, a, par.Even(a.N, 1))
	_, stILU, err := GMRES(a, b, nil, ilu, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stILU.Iterations >= stNone.Iterations {
		t.Errorf("ILU(0) iterations (%d) not fewer than unpreconditioned (%d)",
			stILU.Iterations, stNone.Iterations)
	}
}

func mustBlockJacobi(t *testing.T, a *sparse.CSR, pt par.Partition) *BlockJacobiPC {
	t.Helper()
	pc, err := NewBlockJacobiILU0(a, pt)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestBlockJacobiIterationsGrowWithBlocks(t *testing.T) {
	// More blocks discard more coupling: iteration counts should not
	// decrease as block count rises (the solve-scaling effect the paper
	// observes).
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 4)
	opts := DefaultOptions()
	opts.Tol = 1e-8
	prev := 0
	for _, blocks := range []int{1, 4, 16} {
		pc := mustBlockJacobi(t, a, par.Even(a.N, blocks))
		_, st, err := GMRES(a, b, nil, pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("blocks=%d did not converge", blocks)
		}
		if st.Iterations < prev {
			t.Errorf("iterations decreased with more blocks: %d blocks -> %d iters (prev %d)",
				blocks, st.Iterations, prev)
		}
		prev = st.Iterations
	}
}

func TestGMRESParallelMatchesSerial(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 5)
	opts := DefaultOptions()
	opts.Tol = 1e-10
	xs, _, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Partition = par.Even(a.N, 4)
	xp, _, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(xs[i]-xp[i]) > 1e-9 {
			t.Fatalf("parallel solution differs at %d: %v vs %v", i, xs[i], xp[i])
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x, st, err := GMRES(a, make([]float64, 10), nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero RHS should give zero solution")
		}
	}
}

func TestGMRESRespectsX0(t *testing.T) {
	a := laplacian1D(20)
	b := randomRHS(20, 6)
	// Solve once, then restart from the solution: should converge with
	// zero iterations.
	x, _, err := GMRES(a, b, nil, nil, Options{Tol: 1e-12, MaxIter: 500, Restart: 20})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := GMRES(a, b, x, nil, Options{Tol: 1e-6, MaxIter: 500, Restart: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 1 {
		t.Errorf("warm start took %d iterations", st.Iterations)
	}
}

func TestGMRESErrors(t *testing.T) {
	a := laplacian1D(5)
	if _, _, err := GMRES(a, make([]float64, 4), nil, nil, DefaultOptions()); err == nil {
		t.Error("wrong rhs length accepted")
	}
	if _, _, err := GMRES(a, make([]float64, 5), make([]float64, 3), nil, DefaultOptions()); err == nil {
		t.Error("wrong x0 length accepted")
	}
}

func TestGMRESNonConvergenceReported(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 7)
	opts := Options{Tol: 1e-14, MaxIter: 3, Restart: 3}
	_, st, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Error("3 iterations cannot converge to 1e-14; Converged should be false")
	}
}

func TestCGMatchesGMRES(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 8)
	opts := DefaultOptions()
	opts.Tol = 1e-10
	xg, _, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	xc, st, err := CG(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("CG did not converge")
	}
	for i := range xg {
		if math.Abs(xg[i]-xc[i]) > 1e-6 {
			t.Fatalf("CG and GMRES disagree at %d", i)
		}
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -1) // indefinite
	a := b.Build()
	_, _, err := CG(a, []float64{1, 1}, nil, nil, DefaultOptions())
	if err == nil {
		t.Error("CG accepted an indefinite matrix")
	}
}

func TestCGWithJacobi(t *testing.T) {
	a := laplacian3D(7, 7, 7)
	b := randomRHS(a.N, 9)
	opts := DefaultOptions()
	opts.Tol = 1e-9
	x, st, err := CG(a, b, nil, NewJacobi(a), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	if r := residual(a, x, b); r > 1e-5 {
		t.Errorf("residual = %v", r)
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// For a matrix whose LU factors fit the original pattern (e.g.
	// tridiagonal), ILU(0) is an exact factorization: a single
	// preconditioner application solves the system.
	a := laplacian1D(30)
	b := randomRHS(30, 10)
	pc := mustBlockJacobi(t, a, par.Even(30, 1))
	x := make([]float64, 30)
	pc.Apply(b, x)
	if r := residual(a, x, b); r > 1e-10 {
		t.Errorf("ILU(0) on tridiagonal not exact: residual %v", r)
	}
}

func TestJacobiPCApply(t *testing.T) {
	b := sparse.NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 4)
	b.Add(2, 2, 0) // zero diagonal handled as 1
	a := b.Build()
	pc := NewJacobi(a)
	z := make([]float64, 3)
	pc.Apply([]float64{2, 4, 5}, z)
	if z[0] != 1 || z[1] != 1 || z[2] != 5 {
		t.Errorf("Jacobi apply = %v", z)
	}
}

func TestPreconditionerNames(t *testing.T) {
	if (IdentityPC{}).Name() != "none" {
		t.Error("identity name")
	}
	a := laplacian1D(4)
	if NewJacobi(a).Name() != "jacobi" {
		t.Error("jacobi name")
	}
	pc := mustBlockJacobi(t, a, par.Even(4, 2))
	if pc.Blocks() != 2 {
		t.Error("block count")
	}
}
