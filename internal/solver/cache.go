package solver

import (
	"sync"

	"repro/internal/par"
	"repro/internal/sparse"
)

// PCCache caches one factorized block-Jacobi preconditioner across
// solves. The incremental re-solve path patches only the right-hand
// side between intraoperative updates, so the stiffness matrix — and
// with it the ILU(0) block factors, the dominant setup cost of every
// solve — stays valid from scan to scan.
//
// The cache is keyed on the identity of the CSR matrix plus the row
// partition. That key is sound because the assembly layer never mutates
// a built CSR in place: any change to the stiffness matrix (re-assembly,
// Dirichlet elimination) constructs a new CSR through sparse.Builder,
// which misses the cache automatically. Callers that mutate matrix
// values in place (none in this module) must call Invalidate first.
//
// The zero value is ready to use. Methods are safe for concurrent use,
// though the factorization itself runs outside the lock (two concurrent
// misses may both factorize; the last store wins — correct, just not
// deduplicated).
type PCCache struct {
	mu     sync.Mutex
	key    *sparse.CSR
	part   par.Partition
	pc     *BlockJacobiPC
	hits   uint64
	misses uint64
}

// BlockJacobiILU0 returns the block-Jacobi ILU(0) preconditioner for
// (a, pt), reusing the cached factors when the same matrix and
// partition were factorized before. hit reports whether the cache
// served the request.
func (c *PCCache) BlockJacobiILU0(a *sparse.CSR, pt par.Partition) (pc *BlockJacobiPC, hit bool, err error) {
	c.mu.Lock()
	if c.pc != nil && c.key == a && samePartition(c.part, pt) {
		c.hits++
		pc = c.pc
		c.mu.Unlock()
		return pc, true, nil
	}
	c.misses++
	c.mu.Unlock()
	pc, err = NewBlockJacobiILU0(a, pt)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.key, c.part, c.pc = a, pt, pc
	c.mu.Unlock()
	return pc, false, nil
}

// Invalidate drops the cached factors; the next request factorizes
// fresh. Call whenever the cached matrix may have been mutated in
// place.
func (c *PCCache) Invalidate() {
	c.mu.Lock()
	c.key, c.pc = nil, nil
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *PCCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// samePartition reports whether two row partitions describe the same
// block structure.
func samePartition(a, b par.Partition) bool {
	if a.N != b.N || a.P != b.P || len(a.Starts) != len(b.Starts) {
		return false
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			return false
		}
	}
	return true
}
