package solver

import (
	"testing"

	"repro/internal/par"
	"repro/internal/sparse"
)

// testMatrix builds a small diagonally dominant CSR matrix.
func testMatrix(n int) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.Build()
}

func TestPCCacheHitAndMiss(t *testing.T) {
	a := testMatrix(12)
	pt := par.Even(12, 3)
	var c PCCache

	pc1, hit, err := c.BlockJacobiILU0(a, pt)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request must miss")
	}
	pc2, hit, err := c.BlockJacobiILU0(a, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("same matrix and partition must hit")
	}
	if pc1 != pc2 {
		t.Fatal("hit must return the cached preconditioner instance")
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", h, m)
	}
}

func TestPCCacheMissOnNewMatrix(t *testing.T) {
	a := testMatrix(12)
	pt := par.Even(12, 2)
	var c PCCache
	if _, _, err := c.BlockJacobiILU0(a, pt); err != nil {
		t.Fatal(err)
	}
	// A re-assembled system is a new CSR instance, even with identical
	// values: the identity key must miss.
	a2 := testMatrix(12)
	if _, hit, err := c.BlockJacobiILU0(a2, pt); err != nil || hit {
		t.Fatalf("rebuilt matrix: hit=%v err=%v, want miss", hit, err)
	}
}

func TestPCCacheMissOnPartitionChange(t *testing.T) {
	a := testMatrix(12)
	var c PCCache
	if _, _, err := c.BlockJacobiILU0(a, par.Even(12, 2)); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.BlockJacobiILU0(a, par.Even(12, 4)); err != nil || hit {
		t.Fatalf("changed partition: hit=%v err=%v, want miss", hit, err)
	}
}

func TestPCCacheInvalidate(t *testing.T) {
	a := testMatrix(12)
	pt := par.Even(12, 2)
	var c PCCache
	if _, _, err := c.BlockJacobiILU0(a, pt); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if _, hit, err := c.BlockJacobiILU0(a, pt); err != nil || hit {
		t.Fatalf("after Invalidate: hit=%v err=%v, want miss", hit, err)
	}
}

func TestGMRESWarmContextSeedsIterate(t *testing.T) {
	n := 40
	a := testMatrix(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) + 1
	}
	opts := Options{Tol: 1e-10, MaxIter: 400, Restart: 20}
	cold, coldStats, err := GMRES(a, b, nil, nil, opts)
	if err != nil || !coldStats.Converged {
		t.Fatalf("cold solve: err=%v stats=%v", err, coldStats)
	}
	// Seeding with the solution itself must converge without iterating.
	x, stats, err := GMRESWarmContext(t.Context(), a, b, cold, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WarmStarted {
		t.Fatal("warm solve not marked WarmStarted")
	}
	if !stats.Converged {
		t.Fatalf("warm solve did not converge: %v", stats)
	}
	if stats.Iterations >= coldStats.Iterations {
		t.Fatalf("warm iterations %d not below cold %d", stats.Iterations, coldStats.Iterations)
	}
	if stats.EntryResRel > 1e-9 {
		t.Fatalf("entry residual %g not near zero for an exact seed", stats.EntryResRel)
	}
	for i := range x {
		if d := x[i] - cold[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("warm solution drifted at %d: %g vs %g", i, x[i], cold[i])
		}
	}
	// A wrongly sized seed is an API error, not a silent cold start.
	if _, _, err := GMRESWarmContext(t.Context(), a, b, cold[:n-1], nil, opts); err == nil {
		t.Fatal("short seed accepted")
	}
}
