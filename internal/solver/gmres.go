package solver

import (
	"context"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Options configures the Krylov solvers.
type Options struct {
	// Tol is the relative residual convergence tolerance (preconditioned
	// residual for GMRES, true residual for CG).
	Tol float64
	// MaxIter bounds the total number of iterations.
	MaxIter int
	// Restart is the GMRES restart length m.
	Restart int
	// Partition controls the parallel matrix-vector product; a zero
	// value runs serially.
	Partition par.Partition
	// RecordHistory stores the relative residual after every iteration
	// in Stats.History (for convergence-curve analysis).
	RecordHistory bool
	// StoragePrecision selects the precision of the solver's
	// bandwidth-bound storage (matrix values, Krylov basis). The zero
	// value is PrecisionFloat64; PrecisionFloat32 enables the
	// mixed-precision GMRES path, which demotes storage to float32
	// while keeping all accumulation in float64. CG ignores this
	// setting. See Precision.
	StoragePrecision Precision
}

// DefaultOptions mirrors the PETSc defaults the paper relies on:
// GMRES(30) with a 1e-5 relative tolerance.
func DefaultOptions() Options {
	return Options{Tol: 1e-5, MaxIter: 2000, Restart: 30}
}

// Stats reports solver behaviour for performance analysis.
type Stats struct {
	Iterations   int
	MatVecs      int
	PCApplies    int
	DotProducts  int
	AXPYs        int
	Converged    bool
	FinalResRel  float64
	InitialResid float64
	// EntryResRel is the relative preconditioned residual of the initial
	// iterate (1.0 for a zero start; ≪ 1 for a good warm start) — the
	// quantity that makes the warm-start benefit measurable.
	EntryResRel float64
	// WarmStarted reports that the solve was seeded with a previous
	// solution through GMRESWarmContext.
	WarmStarted bool
	// Restarts counts GMRES restart cycles beyond the first (0 when the
	// solve converged within one cycle).
	Restarts int
	// StagnatedCycles counts restart cycles that reduced the relative
	// residual by less than 1% — the signature of a preconditioner that
	// has stopped helping.
	StagnatedCycles int
	// Diverged reports that some cycle ended with a larger relative
	// residual than it entered with.
	Diverged bool
	// History holds the per-iteration relative residual when
	// Options.RecordHistory is set.
	History []float64
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d matvecs=%d converged=%v rel=%.3g",
		s.Iterations, s.MatVecs, s.Converged, s.FinalResRel)
}

// norm2 returns the Euclidean norm; the sum is accumulation-class and
// must never be demoted to float32.
//
//lint:precision accum=result
func norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// dot returns the inner product; accumulation-class like norm2.
//
//lint:precision accum=result
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// GMRES solves A x = b with a background context; see GMRESContext.
func GMRES(a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options) ([]float64, Stats, error) {
	return GMRESContext(context.Background(), a, b, x0, m, opts)
}

// gmresWorkspace holds every buffer one GMRES solve reuses across
// restart cycles, so the hot cycle kernel performs no allocation at
// all: the Krylov basis v and Hessenberg h are carved out of flat
// backing arrays, and hist caps at the restart length. The cycle kernel
// indexes the rotation and basis buffers in lockstep up to the Krylov
// dimension, per the declared shape contract.
//
//lint:shape len(z)==len(r) len(w)==len(r) len(zw)==len(r) len(v)==len(h) len(sn)==len(cs) len(y)==len(cs) len(g)==len(cs)+1 len(v)==len(g)
//lint:precision accum=r,z,w,zw,h,cs,sn,g,y
type gmresWorkspace struct {
	r, z, w, zw []float64
	v, h        [][]float64
	cs, sn, g   []float64
	y           []float64
	// hist collects this cycle's per-iteration relative residuals; the
	// caller copies them into Stats.History between cycles.
	hist []float64
}

// newGMRESWorkspace allocates the buffers for an n-dimensional solve
// with the given restart length.
func newGMRESWorkspace(n, restart int) *gmresWorkspace {
	ws := &gmresWorkspace{
		r:    make([]float64, n),
		z:    make([]float64, n),
		w:    make([]float64, n),
		zw:   make([]float64, n),
		v:    make([][]float64, restart+1),
		h:    make([][]float64, restart+1),
		cs:   make([]float64, restart),
		sn:   make([]float64, restart),
		g:    make([]float64, restart+1),
		y:    make([]float64, restart),
		hist: make([]float64, 0, restart),
	}
	vBack := make([]float64, (restart+1)*n)
	for i := range ws.v {
		ws.v[i] = vBack[i*n : (i+1)*n]
	}
	hBack := make([]float64, (restart+1)*restart)
	for i := range ws.h {
		ws.h[i] = hBack[i*restart : (i+1)*restart]
	}
	return ws
}

// gmresCycle runs one restart cycle of left-preconditioned GMRES(m):
// residual, Arnoldi with modified Gram-Schmidt, Givens rotations, and
// the triangular solve updating x in place. It is the allocation-free
// inner kernel of the solver — all state lives in ws, counters go to
// stats, and the caller owns the per-cycle span instrumentation and
// context checks.
//
// matvec is passed as a func value rather than (matrix, partition)
// so the parallel path's fan-out closure is allocated once by the
// caller instead of being inlined — and re-allocated — here.
//
// b and x may not alias: the triangular-solve epilogue updates x in
// place while the next cycle re-reads b to form the residual.
//
//lint:noalias b,x
//lint:hotpath
//lint:noescape
func gmresCycle(matvec func(in, out []float64), b, x []float64, m Preconditioner,
	ws *gmresWorkspace, restart, maxIter int, tol, beta0 float64, recordHistory bool,
	stats *Stats) (converged bool, entryRel, exitRel float64) {
	// The reference norm divides every residual below; a zero or
	// non-finite beta0 would make both convergence tests silently false
	// (NaN compares false) and burn maxIter without progress.
	if !(beta0 > 0) || math.IsInf(beta0, 0) {
		stats.Diverged = true
		return false, math.Inf(1), math.Inf(1)
	}
	r, z, w, zw := ws.r, ws.z, ws.w, ws.zw
	v, h := ws.v, ws.h
	cs, sn, g, y := ws.cs, ws.sn, ws.g, ws.y
	ws.hist = ws.hist[:0]

	// r = M^{-1} (b - A x)
	matvec(x, r)
	stats.MatVecs++
	for i := range r {
		r[i] = b[i] - r[i]
	}
	stats.AXPYs++
	m.Apply(r, z)
	stats.PCApplies++
	beta := norm2(z)
	stats.DotProducts++
	entryRel = beta / beta0
	if numeric.Zero(stats.InitialResid) {
		stats.InitialResid = beta
		stats.EntryResRel = entryRel
	}
	if entryRel <= tol {
		stats.Converged = true
		stats.FinalResRel = entryRel
		return true, entryRel, entryRel
	}
	inv := 1 / beta
	for i := range z {
		v[0][i] = z[i] * inv
	}
	for i := range g {
		g[i] = 0
	}
	g[0] = beta

	k := 0
	for ; k < restart && stats.Iterations < maxIter; k++ {
		stats.Iterations++
		// w = M^{-1} A v_k
		matvec(v[k], w)
		stats.MatVecs++
		m.Apply(w, zw)
		stats.PCApplies++
		// Modified Gram-Schmidt.
		for i := 0; i <= k; i++ {
			h[i][k] = dot(zw, v[i])
			stats.DotProducts++
			for j := range zw {
				zw[j] -= h[i][k] * v[i][j]
			}
			stats.AXPYs++
		}
		h[k+1][k] = norm2(zw)
		stats.DotProducts++
		if h[k+1][k] > 1e-300 {
			inv := 1 / h[k+1][k]
			for j := range zw {
				v[k+1][j] = zw[j] * inv
			}
		} else {
			// Happy breakdown: exact solution in current subspace.
			for j := range v[k+1] {
				v[k+1][j] = 0
			}
		}
		// Apply accumulated Givens rotations to the new column.
		for i := 0; i < k; i++ {
			t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
			h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
			h[i][k] = t
		}
		// New rotation to zero h[k+1][k].
		denom := math.Hypot(h[k][k], h[k+1][k])
		if numeric.Zero(denom) {
			cs[k], sn[k] = 1, 0
		} else {
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
		}
		h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
		h[k+1][k] = 0
		g[k+1] = -sn[k] * g[k]
		g[k] = cs[k] * g[k]

		if recordHistory {
			ws.hist = append(ws.hist, math.Abs(g[k+1])/beta0)
		}
		if math.Abs(g[k+1])/beta0 <= tol {
			k++
			break
		}
	}
	// Solve the upper triangular system h y = g for the first k
	// coefficients and update x.
	for i := k - 1; i >= 0; i-- {
		y[i] = g[i]
		for j := i + 1; j < k; j++ {
			y[i] -= h[i][j] * y[j]
		}
		if numeric.NonZero(h[i][i]) {
			y[i] /= h[i][i]
		}
	}
	for i := 0; i < k; i++ {
		for j := range x {
			x[j] += y[i] * v[i][j]
		}
		stats.AXPYs++
	}
	return false, entryRel, math.Abs(g[k]) / beta0
}

// GMRESContext solves A x = b with left-preconditioned restarted
// GMRES(m), starting from x0 (nil means zero). It returns the solution
// and iteration statistics. The iteration stops when the preconditioned
// residual norm falls below Tol times its initial value, or MaxIter is
// reached (Converged reports which). The context is checked once per
// restart cycle: a cancelled or deadline-expired context aborts within
// one cycle, returning the best iterate so far together with ctx.Err().
func GMRESContext(ctx context.Context, a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options) ([]float64, Stats, error) {
	return gmres(ctx, a, b, x0, m, opts, false)
}

// emitSolveEvent publishes one solver.solve convergence event into the
// context's flight recorder — the per-solve numerical-health record
// (iterations, residual trajectory, restart/stagnation/divergence
// counters) that lets a post-hoc dump answer "why did this solve take
// 40 iterations". A no-op without a recorder on the context.
func emitSolveEvent(ctx context.Context, stats *Stats) {
	obs.Emit(ctx, obs.EventSolverSolve, map[string]any{
		"iterations":         stats.Iterations,
		"matvecs":            stats.MatVecs,
		"converged":          stats.Converged,
		"entry_rel_residual": stats.EntryResRel,
		"final_rel_residual": stats.FinalResRel,
		"restarts":           stats.Restarts,
		"stagnated_cycles":   stats.StagnatedCycles,
		"diverged":           stats.Diverged,
		"warm_started":       stats.WarmStarted,
	})
}

// gmres is the shared body of GMRESContext and GMRESWarmContext; warm
// marks the statistics (and the solve event) as warm-started.
func gmres(ctx context.Context, a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options, warm bool) ([]float64, Stats, error) {
	n := a.N
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solver: rhs length %d != n %d", len(b), n)
	}
	if m == nil {
		m = IdentityPC{}
	}
	restart := opts.Restart
	if restart <= 0 {
		restart = 30
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-5
	}
	parallel := opts.Partition.P > 1 && opts.Partition.N == n

	x := make([]float64, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, Stats{}, fmt.Errorf("solver: x0 length %d != n %d", len(x0), n)
		}
		copy(x, x0)
	}

	// The mixed-precision mode demotes the matrix values once per solve
	// and swaps in the float32-basis cycle kernel; everything around the
	// cycle (restart policy, convergence accounting, telemetry) is
	// shared with the float64 path.
	mixed := opts.StoragePrecision == PrecisionFloat32
	var (
		ws   *gmresWorkspace
		ws32 *gmresWorkspace32
		a32  *sparse.CSR32
	)
	if mixed {
		ws32 = newGMRESWorkspace32(n, restart)
		a32 = sparse.NewCSR32(a)
	} else {
		ws = newGMRESWorkspace(n, restart)
	}
	matvec := func(in, out []float64) {
		switch {
		case mixed && parallel:
			a32.MulVecPar(opts.Partition, in, out)
		case mixed:
			a32.MulVec(in, out)
		case parallel:
			a.MulVecPar(opts.Partition, in, out)
		default:
			a.MulVec(in, out)
		}
	}
	// rbuf/zbuf alias the active workspace's residual scratch for the
	// shared pre- and post-loop residual evaluations.
	rbuf, zbuf := []float64(nil), []float64(nil)
	if mixed {
		rbuf, zbuf = ws32.r, ws32.z
	} else {
		rbuf, zbuf = ws.r, ws.z
	}

	var stats Stats
	stats.WarmStarted = warm

	// Convergence is relative to ||M^{-1} b|| (the PETSc convention),
	// which makes warm starts converge immediately instead of chasing a
	// tolerance relative to an already-tiny initial residual.
	m.Apply(b, zbuf)
	stats.PCApplies++
	bNorm := norm2(zbuf)
	stats.DotProducts++
	if numeric.Zero(bNorm) {
		// b = 0: solution is x = 0 regardless of x0.
		stats.Converged = true
		emitSolveEvent(ctx, &stats)
		return make([]float64, n), stats, nil
	}
	if !numeric.Finite(bNorm) {
		// A NaN/Inf right-hand side would poison every relative residual:
		// the convergence comparisons go silently false and the solve
		// burns MaxIter doing nothing. Fail loudly instead.
		stats.FinalResRel = math.NaN()
		emitSolveEvent(ctx, &stats)
		return nil, stats, fmt.Errorf("solver: preconditioned rhs norm is not finite (%g)", bNorm)
	}

	beta0 := bNorm

	cycle := 0
	for stats.Iterations < maxIter {
		// One context check per restart cycle: cheap relative to the m
		// inner iterations, yet bounds the abort latency to one cycle.
		if err := ctx.Err(); err != nil {
			stats.FinalResRel = math.NaN()
			emitSolveEvent(ctx, &stats)
			return x, stats, err
		}
		// Each restart cycle runs in a closure holding one trace span
		// (nil tracer: no-ops), so the span End can be deferred per cycle
		// and convergence traces line up with the per-stage span
		// timeline. The numerical work itself lives in gmresCycle, which
		// is span-free and allocation-free (//lint:noescape).
		converged := func() bool {
			_, span := obs.StartSpan(ctx, obs.SpanGMRESCycle)
			defer span.End(nil)
			span.SetAttr("cycle", cycle)
			histStart := len(stats.History)
			itersBefore := stats.Iterations
			var done bool
			var entryRel, exitRel float64
			if mixed {
				done, entryRel, exitRel = gmresCycle32(matvec, b, x, m,
					ws32, restart, maxIter, tol, beta0, opts.RecordHistory, &stats)
			} else {
				done, entryRel, exitRel = gmresCycle(matvec, b, x, m,
					ws, restart, maxIter, tol, beta0, opts.RecordHistory, &stats)
			}
			// A restart is a cycle that iterated after a previous cycle
			// already had; the zero-iteration pass confirming convergence
			// of the prior cycle's iterate is not one.
			if itersBefore > 0 && stats.Iterations > itersBefore {
				stats.Restarts++
			}
			if opts.RecordHistory {
				if mixed {
					stats.History = append(stats.History, ws32.hist...)
				} else {
					stats.History = append(stats.History, ws.hist...)
				}
			}
			span.SetAttr("entry_rel_residual", entryRel)
			if done {
				span.SetAttr("converged", true)
				return true
			}
			// A cycle that barely moved the residual means the
			// preconditioned Krylov space has stagnated; one that raised it
			// means divergence. Both are flight-recorder material.
			if exitRel > entryRel {
				stats.Diverged = true
				span.SetAttr("diverged", true)
			}
			if exitRel > 0.99*entryRel {
				stats.StagnatedCycles++
				span.SetAttr("stagnated", true)
			}
			span.SetAttr("iterations_total", stats.Iterations)
			span.SetAttr("exit_rel_residual", exitRel)
			if opts.RecordHistory && len(stats.History) > histStart {
				// The residual trace of this cycle, exported so tooling can
				// reconstruct convergence curves from the span stream alone.
				span.SetAttr("residual_history",
					append([]float64(nil), stats.History[histStart:]...))
			}
			return false
		}()
		if converged {
			emitSolveEvent(ctx, &stats)
			return x, stats, nil
		}
		cycle++
	}
	// Final residual check.
	matvec(x, rbuf)
	stats.MatVecs++
	for i := range rbuf {
		rbuf[i] = b[i] - rbuf[i]
	}
	m.Apply(rbuf, zbuf)
	stats.PCApplies++
	rel := norm2(zbuf) / beta0
	stats.FinalResRel = rel
	stats.Converged = rel <= tol
	emitSolveEvent(ctx, &stats)
	return x, stats, nil
}

// GMRESWarmContext is the warm-start entry point of the incremental
// re-solve path: it solves A x = b exactly like GMRESContext but seeds
// the iteration with x0, a previous solution of a nearby system (the
// displacement field of the last intraoperative solve). Because
// convergence is measured relative to ||M^{-1} b||, a good seed shows
// up directly as a small Stats.EntryResRel and correspondingly fewer
// iterations; the solve is marked Stats.WarmStarted for metrics. A nil
// or wrongly sized seed is an error — callers without a previous
// solution should use GMRESContext.
func GMRESWarmContext(ctx context.Context, a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options) ([]float64, Stats, error) {
	if len(x0) != a.N {
		return nil, Stats{}, fmt.Errorf("solver: warm-start seed length %d != n %d", len(x0), a.N)
	}
	return gmres(ctx, a, b, x0, m, opts, true)
}

// CG solves A x = b with a background context; see CGContext.
func CG(a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options) ([]float64, Stats, error) {
	return CGContext(context.Background(), a, b, x0, m, opts)
}

// CGContext solves the symmetric positive definite system A x = b with
// preconditioned conjugate gradients, provided for comparison with
// GMRES (the elastic stiffness matrix is SPD after boundary-condition
// elimination, so CG applies; the paper follows PETSc's robust default
// of GMRES). The context is checked every iteration; on expiry the best
// iterate so far is returned together with ctx.Err().
func CGContext(ctx context.Context, a *sparse.CSR, b, x0 []float64, m Preconditioner, opts Options) ([]float64, Stats, error) {
	n := a.N
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solver: rhs length %d != n %d", len(b), n)
	}
	if m == nil {
		m = IdentityPC{}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-5
	}
	parallel := opts.Partition.P > 1 && opts.Partition.N == n
	matvec := func(in, out []float64) {
		if parallel {
			a.MulVecPar(opts.Partition, in, out)
		} else {
			a.MulVec(in, out)
		}
	}

	var stats Stats
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	matvec(x, r)
	stats.MatVecs++
	for i := range r {
		r[i] = b[i] - r[i]
	}
	res0 := norm2(r)
	stats.InitialResid = res0
	stats.DotProducts++
	if numeric.Zero(res0) {
		stats.Converged = true
		return x, stats, nil
	}
	m.Apply(r, z)
	stats.PCApplies++
	copy(p, z)
	rz := dot(r, z)
	stats.DotProducts++

	for stats.Iterations < maxIter {
		if err := ctx.Err(); err != nil {
			stats.FinalResRel = math.NaN()
			return x, stats, err
		}
		stats.Iterations++
		matvec(p, ap)
		stats.MatVecs++
		pap := dot(p, ap)
		stats.DotProducts++
		if pap <= 0 {
			return x, stats, fmt.Errorf("solver: CG detected non-SPD matrix (pAp=%g)", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		stats.AXPYs += 2
		res := norm2(r)
		stats.DotProducts++
		if opts.RecordHistory {
			stats.History = append(stats.History, res/res0)
		}
		if res/res0 <= tol {
			stats.Converged = true
			stats.FinalResRel = res / res0
			return x, stats, nil
		}
		m.Apply(r, z)
		stats.PCApplies++
		rzNew := dot(r, z)
		stats.DotProducts++
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		stats.AXPYs++
	}
	matvec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	stats.FinalResRel = norm2(r) / res0
	stats.Converged = stats.FinalResRel <= tol
	return x, stats, nil
}
