// Package solver implements the Krylov solvers and preconditioners the
// paper obtains from PETSc: restarted GMRES with block Jacobi
// preconditioning (one block per CPU partition, factorized with
// ILU(0)), plus conjugate gradients and simpler preconditioners for
// comparison. Matrix-vector products are parallelized across the rank
// partition with goroutines, mirroring the paper's distributed solve.
package solver

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Preconditioner applies z = M^{-1} r for a fixed matrix approximation
// M. Implementations must be safe for sequential reuse; Apply is called
// once per Krylov iteration.
type Preconditioner interface {
	Apply(r, z []float64)
	Name() string
}

// IdentityPC is the trivial preconditioner M = I.
type IdentityPC struct{}

// Apply copies r into z.
func (IdentityPC) Apply(r, z []float64) { copy(z, r) }

// Name implements Preconditioner.
func (IdentityPC) Name() string { return "none" }

// JacobiPC is diagonal (point Jacobi) preconditioning.
type JacobiPC struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
// Zero diagonal entries are treated as 1 (no scaling).
func NewJacobi(a *sparse.CSR) *JacobiPC {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if numeric.NonZero(v) {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPC{invDiag: inv}
}

// Apply computes z = D^{-1} r.
func (p *JacobiPC) Apply(r, z []float64) {
	for i, v := range r {
		z[i] = v * p.invDiag[i]
	}
}

// Name implements Preconditioner.
func (p *JacobiPC) Name() string { return "jacobi" }

// iluFactor holds an ILU(0) factorization of a CSR block: L (unit lower
// triangular) and U share the original sparsity pattern and are stored
// in a single CSR-like structure with a cached diagonal pointer.
type iluFactor struct {
	n      int
	rowPtr []int64
	col    []int32
	val    []float64
	diag   []int64 // index of the diagonal entry within each row
}

// newILU0 computes the ILU(0) factorization of a. Rows missing a
// diagonal entry get an implicit unit diagonal. A zero pivot is
// perturbed to a small multiple of the largest row entry so the
// factorization always completes (the paper's stiffness blocks are
// strongly diagonally dominant after boundary-condition substitution,
// so this is a safety net, not the normal path).
func newILU0(a *sparse.CSR) (*iluFactor, error) {
	n := a.N
	f := &iluFactor{
		n:      n,
		rowPtr: append([]int64(nil), a.RowPtr...),
		col:    append([]int32(nil), a.Col...),
		val:    append([]float64(nil), a.Val...),
		diag:   make([]int64, n),
	}
	// Locate diagonals; insert is not possible with fixed pattern, so a
	// missing diagonal is an error (FEM stiffness always has one).
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		cols := f.col[lo:hi]
		k := sort.Search(len(cols), func(p int) bool { return cols[p] >= int32(i) })
		if k == len(cols) || cols[k] != int32(i) {
			return nil, fmt.Errorf("solver: row %d has no diagonal entry", i)
		}
		f.diag[i] = lo + int64(k)
	}
	// IKJ-order ILU(0).
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for p := lo; p < hi; p++ {
			k := int(f.col[p])
			if k >= i {
				break
			}
			// a_ik /= u_kk
			pivot := f.val[f.diag[k]]
			if numeric.Zero(pivot) {
				pivot = 1e-12
			}
			lik := f.val[p] / pivot
			f.val[p] = lik
			// For j > k in row i's pattern: a_ij -= l_ik * u_kj.
			kLo, kHi := f.diag[k]+1, f.rowPtr[k+1]
			iPos := p + 1
			for q := kLo; q < kHi; q++ {
				cj := f.col[q]
				for iPos < hi && f.col[iPos] < cj {
					iPos++
				}
				if iPos < hi && f.col[iPos] == cj {
					f.val[iPos] -= lik * f.val[q]
				}
			}
		}
		if numeric.Zero(f.val[f.diag[i]]) {
			// Zero pivot: perturb.
			maxRow := 0.0
			for p := lo; p < hi; p++ {
				if v := f.val[p]; v > maxRow {
					maxRow = v
				} else if -v > maxRow {
					maxRow = -v
				}
			}
			if numeric.Zero(maxRow) {
				maxRow = 1
			}
			f.val[f.diag[i]] = 1e-10 * maxRow
		}
	}
	return f, nil
}

// solve computes z = (LU)^{-1} r in place over the local index space.
func (f *iluFactor) solve(r, z []float64) {
	// Forward: L y = r (unit diagonal).
	for i := 0; i < f.n; i++ {
		sum := r[i]
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			sum -= f.val[p] * z[f.col[p]]
		}
		z[i] = sum
	}
	// Backward: U z = y.
	for i := f.n - 1; i >= 0; i-- {
		sum := z[i]
		for p := f.diag[i] + 1; p < f.rowPtr[i+1]; p++ {
			sum -= f.val[p] * z[f.col[p]]
		}
		z[i] = sum / f.val[f.diag[i]]
	}
}

// SSORPC is the symmetric successive over-relaxation preconditioner
// M = (D/w + L) (w/(2-w)) D^{-1} (D/w + U), another member of the
// PETSc preconditioner family the paper could have selected. It is
// inherently sequential (forward then backward sweep over all rows),
// which is why the paper's parallel setting favors block Jacobi.
type SSORPC struct {
	a     *sparse.CSR
	omega float64
	diag  []float64
	tmp   []float64
}

// NewSSOR builds the preconditioner with relaxation factor omega in
// (0, 2); omega <= 0 defaults to 1 (symmetric Gauss-Seidel).
func NewSSOR(a *sparse.CSR, omega float64) (*SSORPC, error) {
	if omega <= 0 {
		omega = 1
	}
	if omega >= 2 {
		return nil, fmt.Errorf("solver: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diag()
	for i, v := range d {
		if numeric.Zero(v) {
			return nil, fmt.Errorf("solver: SSOR requires nonzero diagonal (row %d)", i)
		}
	}
	return &SSORPC{a: a, omega: omega, diag: d, tmp: make([]float64, a.N)}, nil
}

// Apply computes z = M^{-1} r via a forward SOR sweep, diagonal
// scaling, and a backward SOR sweep.
func (p *SSORPC) Apply(r, z []float64) {
	a := p.a
	w := p.omega
	y := p.tmp
	// Forward: (D/w + L) y = r.
	for i := 0; i < a.N; i++ {
		sum := r[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := int(a.Col[q])
			if j < i {
				sum -= a.Val[q] * y[j]
			}
		}
		y[i] = sum * w / p.diag[i]
	}
	// Scale: y <- D y * (2-w)/w.
	for i := 0; i < a.N; i++ {
		y[i] *= p.diag[i] * (2 - w) / w
	}
	// Backward: (D/w + U) z = y.
	for i := a.N - 1; i >= 0; i-- {
		sum := y[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := int(a.Col[q])
			if j > i {
				sum -= a.Val[q] * z[j]
			}
		}
		z[i] = sum * w / p.diag[i]
	}
}

// Name implements Preconditioner.
func (p *SSORPC) Name() string { return fmt.Sprintf("ssor(%.2g)", p.omega) }

// BlockJacobiPC is the paper's preconditioner: the matrix restricted to
// each rank's row block, factorized with ILU(0); off-block coupling is
// dropped. With one block it degenerates to global ILU(0); with n
// blocks of size 1 it degenerates to point Jacobi.
type BlockJacobiPC struct {
	part    par.Partition
	factors []*iluFactor
}

// NewBlockJacobiILU0 builds the block preconditioner for the given row
// partition.
func NewBlockJacobiILU0(a *sparse.CSR, pt par.Partition) (*BlockJacobiPC, error) {
	pc := &BlockJacobiPC{part: pt, factors: make([]*iluFactor, pt.P)}
	var firstErr error
	pt.ForEachRank(func(r int) {
		lo, hi := pt.Range(r)
		if lo == hi {
			return
		}
		blk := a.DiagonalBlock(lo, hi)
		f, err := newILU0(blk)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("solver: block %d: %w", r, err)
			}
			return
		}
		pc.factors[r] = f
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return pc, nil
}

// Apply solves each diagonal block independently (in parallel).
func (pc *BlockJacobiPC) Apply(r, z []float64) {
	pc.part.ForEachRank(func(rank int) {
		lo, hi := pc.part.Range(rank)
		if lo == hi {
			return
		}
		pc.factors[rank].solve(r[lo:hi], z[lo:hi])
	})
}

// Name implements Preconditioner.
func (pc *BlockJacobiPC) Name() string {
	return fmt.Sprintf("block-jacobi(%d,ilu0)", pc.part.P)
}

// Blocks returns the number of blocks.
func (pc *BlockJacobiPC) Blocks() int { return pc.part.P }

// BlockNNZ returns the number of stored entries in each block factor —
// the per-rank preconditioner work, used by the cluster performance
// model.
func (pc *BlockJacobiPC) BlockNNZ() []int64 {
	out := make([]int64, len(pc.factors))
	for i, f := range pc.factors {
		if f != nil {
			out[i] = int64(len(f.val))
		}
	}
	return out
}
