package solver

import (
	"testing"

	"repro/internal/par"
)

func BenchmarkGMRESUnpreconditioned(b *testing.B) {
	a := laplacian3D(12, 12, 12)
	rhs := randomRHS(a.N, 1)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := GMRES(a, rhs, nil, nil, opts); err != nil || !st.Converged {
			b.Fatalf("err=%v st=%v", err, st)
		}
	}
}

func BenchmarkGMRESBlockJacobi8(b *testing.B) {
	a := laplacian3D(12, 12, 12)
	rhs := randomRHS(a.N, 1)
	opts := DefaultOptions()
	pc, err := NewBlockJacobiILU0(a, par.Even(a.N, 8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := GMRES(a, rhs, nil, pc, opts); err != nil || !st.Converged {
			b.Fatalf("err=%v st=%v", err, st)
		}
	}
}

func BenchmarkCGJacobi(b *testing.B) {
	a := laplacian3D(12, 12, 12)
	rhs := randomRHS(a.N, 1)
	opts := DefaultOptions()
	pc := NewJacobi(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := CG(a, rhs, nil, pc, opts); err != nil || !st.Converged {
			b.Fatalf("err=%v st=%v", err, st)
		}
	}
}

func BenchmarkILU0Setup(b *testing.B) {
	a := laplacian3D(14, 14, 14)
	pt := par.Even(a.N, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBlockJacobiILU0(a, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILU0Apply(b *testing.B) {
	a := laplacian3D(14, 14, 14)
	pc, err := NewBlockJacobiILU0(a, par.Even(a.N, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := randomRHS(a.N, 2)
	z := make([]float64, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Apply(r, z)
	}
}
