package solver

import (
	"testing"

	"repro/internal/par"
)

func TestGMRESHistoryMonotoneWithinCycle(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 31)
	opts := DefaultOptions()
	opts.Tol = 1e-9
	opts.RecordHistory = true
	_, st, err := GMRES(a, b, nil, NewJacobi(a), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	if len(st.History) == 0 {
		t.Fatal("no history recorded")
	}
	if len(st.History) != st.Iterations {
		t.Errorf("history length %d != iterations %d", len(st.History), st.Iterations)
	}
	// Within a GMRES cycle the least-squares residual never increases.
	restart := opts.Restart
	for i := 1; i < len(st.History); i++ {
		if i%restart == 0 {
			continue // restart boundary may jump
		}
		if st.History[i] > st.History[i-1]+1e-12 {
			t.Fatalf("residual increased within cycle at iter %d: %v -> %v",
				i, st.History[i-1], st.History[i])
		}
	}
	// Final recorded residual meets the tolerance.
	if last := st.History[len(st.History)-1]; last > opts.Tol {
		t.Errorf("final history %v above tol %v", last, opts.Tol)
	}
}

func TestHistoryOffByDefault(t *testing.T) {
	a := laplacian1D(20)
	b := randomRHS(20, 32)
	_, st, err := GMRES(a, b, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.History != nil {
		t.Error("history recorded without RecordHistory")
	}
}

func TestCGHistory(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 33)
	opts := DefaultOptions()
	opts.Tol = 1e-8
	opts.RecordHistory = true
	_, st, err := CG(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.History) != st.Iterations {
		t.Errorf("history length %d != iterations %d", len(st.History), st.Iterations)
	}
	if last := st.History[len(st.History)-1]; last > opts.Tol {
		t.Errorf("final CG history %v above tol", last)
	}
}

// TestBlockCountConvergenceCurves reproduces the solver-quality side of
// the paper's scaling observation: more Jacobi blocks (CPUs) mean a
// weaker preconditioner, visible as a slower convergence curve.
func TestBlockCountConvergenceCurves(t *testing.T) {
	a := laplacian3D(10, 10, 10)
	b := randomRHS(a.N, 34)
	opts := DefaultOptions()
	opts.Tol = 1e-8
	opts.RecordHistory = true
	var lengths []int
	for _, blocks := range []int{1, 8, 64} {
		pc := mustBlockJacobi(t, a, par.Even(a.N, blocks))
		_, st, err := GMRES(a, b, nil, pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("blocks=%d not converged", blocks)
		}
		lengths = append(lengths, len(st.History))
	}
	for i := 1; i < len(lengths); i++ {
		if lengths[i] < lengths[i-1] {
			t.Errorf("convergence curve shortened with more blocks: %v", lengths)
		}
	}
}
