package solver

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/sparse"
)

// denseSolve solves the n x n dense system a x = b by Gaussian
// elimination with partial pivoting, the reference GMRES is fuzzed
// against. a and b are overwritten.
func denseSolve(n int, a []float64, b []float64) []float64 {
	for c := 0; c < n; c++ {
		// Pivot: largest magnitude in column c at or below the diagonal.
		p := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r*n+c]) > math.Abs(a[p*n+c]) {
				p = r
			}
		}
		if p != c {
			for j := 0; j < n; j++ {
				a[c*n+j], a[p*n+j] = a[p*n+j], a[c*n+j]
			}
			b[c], b[p] = b[p], b[c]
		}
		piv := a[c*n+c]
		for r := c + 1; r < n; r++ {
			f := a[r*n+c] / piv
			if numeric.Zero(f) {
				continue
			}
			for j := c; j < n; j++ {
				a[r*n+j] -= f * a[c*n+j]
			}
			b[r] -= f * b[c]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for j := r + 1; j < n; j++ {
			s -= a[r*n+j] * x[j]
		}
		x[r] = s / a[r*n+r]
	}
	return x
}

// FuzzGMRESAgainstDense builds small strictly diagonally dominant
// (hence nonsingular and well-conditioned) systems from fuzzer bytes —
// nonsymmetric in general, so this exercises the full Arnoldi path
// rather than the symmetric special case CG covers — and checks the
// GMRES solution against Gaussian elimination with partial pivoting.
// Diagonal dominance bounds the condition number, which is what makes
// a universal comparison tolerance sound.
func FuzzGMRESAgainstDense(f *testing.F) {
	f.Add(uint8(3), []byte{10, 200, 30, 90, 250, 1}, []byte{1, 2, 3})
	f.Add(uint8(1), []byte{}, []byte{128})
	f.Add(uint8(6), []byte{0, 0, 0, 0, 255, 255, 255, 255}, []byte{})
	f.Add(uint8(5), []byte{7, 77, 177, 27, 127, 227, 3, 93, 183}, []byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, nRaw uint8, offdiag, rhs []byte) {
		n := int(nRaw%8) + 1

		// Off-diagonal entries in [-1, 1] from the fuzzed bytes; the
		// diagonal is the row's absolute sum plus one, making the matrix
		// strictly diagonally dominant whatever the bytes say.
		dense := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || len(offdiag) == 0 {
					continue
				}
				raw := offdiag[(i*n+j)%len(offdiag)]
				dense[i*n+j] = (float64(raw) - 127.5) / 127.5
			}
		}
		bld := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			rowAbs := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					rowAbs += math.Abs(dense[i*n+j])
					if numeric.NonZero(dense[i*n+j]) {
						bld.Add(i, j, dense[i*n+j])
					}
				}
			}
			dense[i*n+i] = rowAbs + 1
			bld.Add(i, i, dense[i*n+i])
		}
		a := bld.Build()

		b := make([]float64, n)
		for i := range b {
			if len(rhs) > 0 {
				b[i] = (float64(rhs[i%len(rhs)]) - 127.5) / 32
			}
		}

		got, stats, err := GMRES(a, b, nil, nil, Options{Tol: 1e-12, Restart: n + 1, MaxIter: 50 * n})
		if err != nil {
			t.Fatalf("GMRES: %v", err)
		}
		if !stats.Converged {
			t.Fatalf("GMRES did not converge on a diagonally dominant %dx%d system (final rel resid %g)",
				n, n, stats.FinalResRel)
		}

		denseA := append([]float64(nil), dense...)
		denseB := append([]float64(nil), b...)
		want := denseSolve(n, denseA, denseB)
		for i := range want {
			if !numeric.EqAbs(got[i], want[i], 1e-6) && !numeric.EqRel(got[i], want[i], 1e-6) {
				t.Fatalf("x[%d]: GMRES %g, dense %g (n=%d)", i, got[i], want[i], n)
			}
		}

		// The solver must corroborate its own verdict: residual recomputed
		// from the returned iterate, not just the Givens estimate.
		r := make([]float64, n)
		a.MulVec(got, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		rn := 0.0
		for _, v := range r {
			rn += v * v
		}
		bn := 0.0
		for _, v := range b {
			bn += v * v
		}
		if math.Sqrt(rn) > 1e-8*(1+math.Sqrt(bn)) {
			t.Fatalf("true residual %g too large for converged solve", math.Sqrt(rn))
		}
	})
}
