package solver

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestSSORAcceleratesGMRES(t *testing.T) {
	a := laplacian3D(8, 8, 8)
	b := randomRHS(a.N, 41)
	opts := DefaultOptions()
	opts.Tol = 1e-9
	_, stNone, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewSSOR(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x, stSSOR, err := GMRES(a, b, nil, pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stSSOR.Converged {
		t.Fatal("SSOR-preconditioned GMRES did not converge")
	}
	if stSSOR.Iterations >= stNone.Iterations {
		t.Errorf("SSOR iterations (%d) not fewer than unpreconditioned (%d)",
			stSSOR.Iterations, stNone.Iterations)
	}
	if r := residual(a, x, b); r > 1e-5 {
		t.Errorf("residual = %v", r)
	}
}

func TestSSORSolutionMatchesBaseline(t *testing.T) {
	a := laplacian3D(6, 6, 6)
	b := randomRHS(a.N, 42)
	opts := DefaultOptions()
	opts.Tol = 1e-10
	base, _, err := GMRES(a, b, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []float64{0.8, 1.0, 1.4} {
		pc, err := NewSSOR(a, omega)
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := GMRES(a, b, nil, pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("omega=%v not converged", omega)
		}
		for i := range x {
			if math.Abs(x[i]-base[i]) > 1e-5 {
				t.Fatalf("omega=%v: solution differs at %d", omega, i)
			}
		}
	}
}

func TestSSORRejectsBadInputs(t *testing.T) {
	a := laplacian1D(5)
	if _, err := NewSSOR(a, 2.0); err == nil {
		t.Error("omega=2 accepted")
	}
	// Zero diagonal rejected.
	b := sparse.NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	if _, err := NewSSOR(b.Build(), 1); err == nil {
		t.Error("zero diagonal accepted")
	}
	// omega <= 0 defaults to 1.
	pc, err := NewSSOR(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Name() != "ssor(1)" {
		t.Errorf("Name = %q", pc.Name())
	}
}

func TestSSORExactOnDiagonalMatrix(t *testing.T) {
	// For a purely diagonal matrix SSOR is an exact solve.
	b := sparse.NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 1, 4)
	b.Add(2, 2, 8)
	a := b.Build()
	pc, err := NewSSOR(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 3)
	pc.Apply([]float64{2, 4, 8}, z)
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(z[i]-want) > 1e-12 {
			t.Errorf("z[%d] = %v, want %v", i, z[i], want)
		}
	}
}
