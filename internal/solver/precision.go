package solver

import (
	"math"

	"repro/internal/numeric"
)

// Precision selects the storage precision of the solver's
// bandwidth-bound arrays — the CSR value array and the Krylov basis.
// Accumulation (dot products, norms, Givens rotations, residual and
// iterate updates) always runs in float64 regardless of this setting;
// simlint's precguard analyzer proves that split along value flow.
type Precision int

const (
	// PrecisionFloat64 stores everything in float64 (the default).
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 demotes matrix values and Krylov basis vectors to
	// float32 storage while accumulating in float64: roughly 2/3 of the
	// SpMV byte traffic and half the basis traffic per iteration, at the
	// cost of a basis rounded to float32 — safe for the paper's 1e-5
	// relative tolerance, which sits well above float32 epsilon.
	PrecisionFloat32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == PrecisionFloat32 {
		return "float32"
	}
	return "float64"
}

// widenInto promotes the float32-stored vector src into the float64
// scratch dst, the widening boundary every mixed-precision consumer
// (matvec input, reference checks) goes through. Widening loses
// nothing, so no conversion marker is needed.
//
//lint:precision storage=src accum=dst
func widenInto(dst []float64, src []float32) {
	for i, s := range src {
		dst[i] = float64(s)
	}
}

// narrowScaled writes dst[i] = float32(src[i] * scale): the sanctioned
// narrowing of a freshly orthogonalized float64 vector into the
// float32 Krylov basis. This is the only place the GMRES kernel is
// allowed to round accumulation-class data to storage precision, which
// is why it carries the precguard convert marker.
//
//lint:precision convert storage=dst accum=src
func narrowScaled(dst []float32, src []float64, scale float64) {
	for i, s := range src {
		dst[i] = float32(s * scale)
	}
}

// dot32 computes the inner product of a float64 vector with a
// float32-stored vector, widening each stored element before the
// multiply so the sum carries full float64 precision.
//
//lint:precision storage=b accum=a,result
func dot32(a []float64, b []float32) float64 {
	s := 0.0
	b = b[:len(a)]
	for i := range a {
		s += a[i] * float64(b[i])
	}
	return s
}

// gmresWorkspace32 is the mixed-precision counterpart of
// gmresWorkspace: the Krylov basis v32 is stored in float32 (halving
// the basis byte traffic of every Gram-Schmidt pass), while the
// residual/scratch vectors, Hessenberg column, rotations, and
// triangular-solve buffers stay float64 — they are accumulation-class
// and precguard forbids demoting them.
//
//lint:shape len(z)==len(r) len(w)==len(r) len(zw)==len(r) len(v32)==len(h) len(sn)==len(cs) len(y)==len(cs) len(g)==len(cs)+1 len(v32)==len(g)
//lint:precision storage=v32 accum=r,z,w,zw,h,cs,sn,g,y
type gmresWorkspace32 struct {
	r, z, w, zw []float64
	v32         [][]float32
	h           [][]float64
	cs, sn, g   []float64
	y           []float64
	// hist collects this cycle's per-iteration relative residuals; the
	// caller copies them into Stats.History between cycles.
	hist []float64
}

// newGMRESWorkspace32 allocates the mixed-precision buffers for an
// n-dimensional solve with the given restart length; the float32 basis
// is carved out of one flat backing array exactly like the float64
// workspace.
func newGMRESWorkspace32(n, restart int) *gmresWorkspace32 {
	ws := &gmresWorkspace32{
		r:    make([]float64, n),
		z:    make([]float64, n),
		w:    make([]float64, n),
		zw:   make([]float64, n),
		v32:  make([][]float32, restart+1),
		h:    make([][]float64, restart+1),
		cs:   make([]float64, restart),
		sn:   make([]float64, restart),
		g:    make([]float64, restart+1),
		y:    make([]float64, restart),
		hist: make([]float64, 0, restart),
	}
	vBack := make([]float32, (restart+1)*n)
	for i := range ws.v32 {
		ws.v32[i] = vBack[i*n : (i+1)*n]
	}
	hBack := make([]float64, (restart+1)*restart)
	for i := range ws.h {
		ws.h[i] = hBack[i*restart : (i+1)*restart]
	}
	return ws
}

// gmresCycle32 runs one restart cycle of left-preconditioned GMRES(m)
// with a float32-stored Krylov basis and float64 accumulation: the
// mixed-precision twin of gmresCycle. Every read of the basis widens
// through widenInto/dot32 before arithmetic; every write narrows
// through the narrowScaled convert site. The Arnoldi recurrence,
// Givens rotations, and triangular solve are otherwise identical to
// the float64 kernel, so iteration counts track the baseline closely
// as long as the target tolerance stays well above float32 epsilon
// (enforced by the parity tests and cmd/benchprec).
//
// b and x may not alias (see gmresCycle).
//
//lint:noalias b,x
//lint:hotpath
//lint:noescape
func gmresCycle32(matvec func(in, out []float64), b, x []float64, m Preconditioner,
	ws *gmresWorkspace32, restart, maxIter int, tol, beta0 float64, recordHistory bool,
	stats *Stats) (converged bool, entryRel, exitRel float64) {
	// See gmresCycle: a zero or non-finite reference norm would make the
	// convergence tests silently false.
	if !(beta0 > 0) || math.IsInf(beta0, 0) {
		stats.Diverged = true
		return false, math.Inf(1), math.Inf(1)
	}
	r, z, w, zw := ws.r, ws.z, ws.w, ws.zw
	v, h := ws.v32, ws.h
	cs, sn, g, y := ws.cs, ws.sn, ws.g, ws.y
	ws.hist = ws.hist[:0]

	// r = M^{-1} (b - A x)
	matvec(x, r)
	stats.MatVecs++
	for i := range r {
		r[i] = b[i] - r[i]
	}
	stats.AXPYs++
	m.Apply(r, z)
	stats.PCApplies++
	beta := norm2(z)
	stats.DotProducts++
	entryRel = beta / beta0
	if numeric.Zero(stats.InitialResid) {
		stats.InitialResid = beta
		stats.EntryResRel = entryRel
	}
	if entryRel <= tol {
		stats.Converged = true
		stats.FinalResRel = entryRel
		return true, entryRel, entryRel
	}
	narrowScaled(v[0], z, 1/beta)
	for i := range g {
		g[i] = 0
	}
	g[0] = beta

	k := 0
	for ; k < restart && stats.Iterations < maxIter; k++ {
		stats.Iterations++
		// w = M^{-1} A v_k, widening the stored basis vector into the z
		// scratch first (z's cycle-entry value was consumed into v[0]).
		widenInto(z, v[k])
		matvec(z, w)
		stats.MatVecs++
		m.Apply(w, zw)
		stats.PCApplies++
		// Modified Gram-Schmidt with per-element widening of the basis.
		for i := 0; i <= k; i++ {
			h[i][k] = dot32(zw, v[i])
			stats.DotProducts++
			hv := h[i][k]
			vi := v[i][:len(zw)]
			for j := range zw {
				zw[j] -= hv * float64(vi[j])
			}
			stats.AXPYs++
		}
		h[k+1][k] = norm2(zw)
		stats.DotProducts++
		if h[k+1][k] > 1e-300 {
			narrowScaled(v[k+1], zw, 1/h[k+1][k])
		} else {
			// Happy breakdown: exact solution in current subspace.
			for j := range v[k+1] {
				v[k+1][j] = 0
			}
		}
		// Apply accumulated Givens rotations to the new column.
		for i := 0; i < k; i++ {
			t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
			h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
			h[i][k] = t
		}
		// New rotation to zero h[k+1][k].
		denom := math.Hypot(h[k][k], h[k+1][k])
		if numeric.Zero(denom) {
			cs[k], sn[k] = 1, 0
		} else {
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
		}
		h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
		h[k+1][k] = 0
		g[k+1] = -sn[k] * g[k]
		g[k] = cs[k] * g[k]

		if recordHistory {
			ws.hist = append(ws.hist, math.Abs(g[k+1])/beta0)
		}
		if math.Abs(g[k+1])/beta0 <= tol {
			k++
			break
		}
	}
	// Solve the upper triangular system h y = g for the first k
	// coefficients and update x, widening each basis element.
	for i := k - 1; i >= 0; i-- {
		y[i] = g[i]
		for j := i + 1; j < k; j++ {
			y[i] -= h[i][j] * y[j]
		}
		if numeric.NonZero(h[i][i]) {
			y[i] /= h[i][i]
		}
	}
	for i := 0; i < k; i++ {
		yi := y[i]
		vi := v[i][:len(x)]
		for j := range x {
			x[j] += yi * float64(vi[j])
		}
		stats.AXPYs++
	}
	return false, entryRel, math.Abs(g[k]) / beta0
}
