package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/volume"
)

// StageEvent is one per-stage progress record of a job — the live
// feed behind the paper's Figure 6 timeline.
type StageEvent struct {
	// Stage is the core.Stage* name.
	Stage string
	// Start is when the stage began.
	Start time.Time
	// Elapsed is the stage duration; zero while the stage is running.
	Elapsed time.Duration
	// Done reports whether the stage has finished.
	Done bool
	// Err holds the stage failure, if any.
	Err error
	// Counters carries the per-rank work snapshot for stages that
	// record one (the FEM assembly of the solve stage).
	Counters par.Snapshot
	// HasCounters reports whether Counters was populated.
	HasCounters bool
}

// Job is the handle of one submitted scan.
type Job struct {
	// SessionID names the surgical session the scan belongs to.
	SessionID string

	ctx     context.Context
	ms      *managedSession
	intraop *volume.Scalar

	enqueued time.Time
	started  time.Time

	done   chan struct{}
	result *core.Result
	err    error

	mu     sync.Mutex
	events []StageEvent
}

// Done returns a channel closed when the job has finished.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires. Note that a ctx
// expiry here only abandons the wait; the submission context passed to
// Submit is what cancels the computation itself.
func (j *Job) Wait(ctx context.Context) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Events returns a copy of the per-stage progress events recorded so
// far. It is safe to call while the job is running.
func (j *Job) Events() []StageEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]StageEvent(nil), j.events...)
}

// QueueWait returns how long the job sat in the queue before a worker
// picked it up (zero while still queued).
func (j *Job) QueueWait() time.Duration {
	if j.started.IsZero() {
		return 0
	}
	return j.started.Sub(j.enqueued)
}

// Timeline renders the recorded stage events as text, one line per
// stage — the service-side analogue of core.Result.Timeline that also
// works for failed or still-running jobs.
func (j *Job) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s: stage timeline\n", j.SessionID)
	for _, e := range j.Events() {
		switch {
		case !e.Done:
			fmt.Fprintf(&b, "  %-28s    running\n", e.Stage)
		case e.Err != nil:
			fmt.Fprintf(&b, "  %-28s %10.3fs  ERROR: %v\n", e.Stage, e.Elapsed.Seconds(), e.Err)
		default:
			fmt.Fprintf(&b, "  %-28s %10.3fs\n", e.Stage, e.Elapsed.Seconds())
		}
	}
	return b.String()
}

// jobRecorder is the per-job core.Observer: it turns the pipeline's
// callbacks into the job's StageEvent log. Stages of one job are
// sequential, so StageDone always completes the most recent event.
type jobRecorder struct {
	j *Job
}

// StageStart implements core.Observer.
func (r *jobRecorder) StageStart(stage string) {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	r.j.events = append(r.j.events, StageEvent{Stage: stage, Start: time.Now()})
}

// StageDone implements core.Observer.
func (r *jobRecorder) StageDone(stage string, elapsed time.Duration, err error) {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	for i := len(r.j.events) - 1; i >= 0; i-- {
		if r.j.events[i].Stage == stage && !r.j.events[i].Done {
			r.j.events[i].Elapsed = elapsed
			r.j.events[i].Done = true
			r.j.events[i].Err = err
			return
		}
	}
}

// StageCounters implements core.Observer.
func (r *jobRecorder) StageCounters(stage string, snap par.Snapshot) {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	for i := len(r.j.events) - 1; i >= 0; i-- {
		if r.j.events[i].Stage == stage {
			r.j.events[i].Counters = snap
			r.j.events[i].HasCounters = true
			return
		}
	}
}
