package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/volume"
)

// StageEvent is one per-stage progress record of a job — the live
// feed behind the paper's Figure 6 timeline.
type StageEvent struct {
	// Stage is the core.Stage* name.
	Stage string
	// Start is when the stage began.
	Start time.Time
	// Elapsed is the stage duration; zero while the stage is running.
	Elapsed time.Duration
	// Done reports whether the stage has finished.
	Done bool
	// Err holds the stage failure, if any.
	Err error
	// Counters carries the per-rank work snapshot for stages that
	// record one (the FEM assembly of the solve stage).
	Counters par.Snapshot
	// HasCounters reports whether Counters was populated.
	HasCounters bool
}

// JobKind distinguishes the two scan-processing paths of the service.
type JobKind string

const (
	// JobRegister is a full cold registration (all six pipeline stages).
	JobRegister JobKind = "register"
	// JobUpdate is an incremental re-solve of a streaming scan against
	// the session baseline (warm-started solve, patched boundary
	// conditions, cached preconditioner).
	JobUpdate JobKind = "update"
)

// Job is the handle of one submitted scan.
type Job struct {
	// ID is the service-assigned job identifier ("j000042"), unique for
	// the lifetime of the service and addressable on the admin surface
	// as /jobs/{id}.
	ID string
	// SessionID names the surgical session the scan belongs to.
	SessionID string
	// Kind is the requested processing path. An update submitted before
	// the session has a baseline falls back to a full registration at
	// run time (see FellBack in the job status).
	Kind JobKind

	ctx     context.Context
	ms      *managedSession
	intraop *volume.Scalar

	enqueued time.Time

	done chan struct{}

	// mu guards everything below: the admin server reads jobs while
	// workers mutate them.
	mu       sync.Mutex
	started  time.Time
	fellBack bool
	result   *core.Result
	err      error
	events   []StageEvent
}

// Done returns a channel closed when the job has finished.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires. Note that a ctx
// expiry here only abandons the wait; the submission context passed to
// Submit is what cancels the computation itself.
func (j *Job) Wait(ctx context.Context) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Events returns a copy of the per-stage progress events recorded so
// far. It is safe to call while the job is running.
func (j *Job) Events() []StageEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]StageEvent(nil), j.events...)
}

// QueueWait returns how long the job sat in the queue before a worker
// picked it up (zero while still queued).
func (j *Job) QueueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	return j.started.Sub(j.enqueued)
}

// setStarted records the moment a worker picked the job up.
func (j *Job) setStarted(t time.Time) {
	j.mu.Lock()
	j.started = t
	j.mu.Unlock()
}

// markFellBack records that an update job ran as a full registration
// because the session had no baseline yet.
func (j *Job) markFellBack() {
	j.mu.Lock()
	j.fellBack = true
	j.mu.Unlock()
}

// FellBack reports whether an update job fell back to a full
// registration.
func (j *Job) FellBack() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fellBack
}

// finish records the terminal result. The done channel is closed by the
// caller afterwards, so Wait observes result and err fully written.
func (j *Job) finish(res *core.Result, err error) {
	j.mu.Lock()
	j.result, j.err = res, err
	j.mu.Unlock()
}

// JobStageStatus is the wire form of one stage event on /jobs/{id}.
type JobStageStatus struct {
	Stage     string  `json:"stage"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Done      bool    `json:"done"`
	Error     string  `json:"error,omitempty"`
	// Flops and Imbalance carry the FEM assembly counters when the
	// stage recorded them.
	Flops     float64 `json:"flops,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
}

// JobStatus is the wire form of a job on the admin surface: the live
// stage timeline plus the terminal outcome once there is one.
type JobStatus struct {
	ID        string `json:"id"`
	SessionID string `json:"session_id"`
	Kind      string `json:"kind"`  // register | update
	State     string `json:"state"` // queued | running | done
	// FellBack marks an update that ran as a full registration because
	// the session had no baseline.
	FellBack bool      `json:"fell_back,omitempty"`
	Enqueued time.Time `json:"enqueued"`
	// QueueWaitMS is how long the job sat in the queue (zero while
	// still queued).
	QueueWaitMS float64          `json:"queue_wait_ms"`
	Stages      []JobStageStatus `json:"stages,omitempty"`
	Degraded    bool             `json:"degraded,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// Status snapshots the job for the admin surface. Safe to call at any
// point in the job's life, including while stages are running.
func (j *Job) Status() JobStatus {
	st := JobStatus{ID: j.ID, SessionID: j.SessionID, Kind: string(j.Kind), Enqueued: j.enqueued}
	finished := false
	select {
	case <-j.done:
		finished = true
	default:
	}
	j.mu.Lock()
	switch {
	case finished:
		st.State = "done"
	case !j.started.IsZero():
		st.State = "running"
	default:
		st.State = "queued"
	}
	st.FellBack = j.fellBack
	if !j.started.IsZero() {
		st.QueueWaitMS = float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond)
	}
	if finished {
		if j.err != nil {
			st.Error = j.err.Error()
		}
		if j.result != nil {
			st.Degraded = j.result.Degraded
		}
	}
	events := append([]StageEvent(nil), j.events...)
	j.mu.Unlock()
	for _, e := range events {
		ss := JobStageStatus{
			Stage:     e.Stage,
			ElapsedMS: float64(e.Elapsed) / float64(time.Millisecond),
			Done:      e.Done,
		}
		if !e.Done {
			// Live stages report elapsed-so-far, so the timeline moves
			// while the surgeon waits.
			ss.ElapsedMS = float64(time.Since(e.Start)) / float64(time.Millisecond)
		}
		if e.Err != nil {
			ss.Error = e.Err.Error()
		}
		if e.HasCounters {
			ss.Flops = e.Counters.TotalFlops
			ss.Imbalance = e.Counters.Imbalance
		}
		st.Stages = append(st.Stages, ss)
	}
	return st
}

// Timeline renders the recorded stage events as text, one line per
// stage — the service-side analogue of core.Result.Timeline that also
// works for failed or still-running jobs.
func (j *Job) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s: stage timeline\n", j.SessionID)
	for _, e := range j.Events() {
		switch {
		case !e.Done:
			fmt.Fprintf(&b, "  %-28s    running\n", e.Stage)
		case e.Err != nil:
			fmt.Fprintf(&b, "  %-28s %10.3fs  ERROR: %v\n", e.Stage, e.Elapsed.Seconds(), e.Err)
		default:
			fmt.Fprintf(&b, "  %-28s %10.3fs\n", e.Stage, e.Elapsed.Seconds())
		}
	}
	return b.String()
}

// maxJobStageEvents bounds one job's retained stage-event history; a
// pathological pipeline cannot grow a job's memory without bound. The
// six-stage pipeline stays far below it, so drops only ever happen on
// runaway instrumentation — and are counted when they do.
const maxJobStageEvents = 64

// jobRecorder is the per-job core.Observer: it turns the pipeline's
// callbacks into the job's StageEvent log. Stages of one job are
// sequential, so StageDone always completes the most recent event.
type jobRecorder struct {
	j   *Job
	agg *aggregator
}

// StageStart implements core.Observer.
func (r *jobRecorder) StageStart(stage string) {
	r.j.mu.Lock()
	r.j.events = append(r.j.events, StageEvent{Stage: stage, Start: time.Now()})
	dropped := 0
	if len(r.j.events) > maxJobStageEvents {
		dropped = len(r.j.events) - maxJobStageEvents
		r.j.events = append(r.j.events[:0], r.j.events[dropped:]...)
	}
	r.j.mu.Unlock()
	// The drop metric is fed outside j.mu: instrument locks never nest
	// inside job locks.
	if r.agg != nil {
		r.agg.stageEventsDropped(dropped)
	}
}

// StageDone implements core.Observer.
func (r *jobRecorder) StageDone(stage string, elapsed time.Duration, err error) {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	for i := len(r.j.events) - 1; i >= 0; i-- {
		if r.j.events[i].Stage == stage && !r.j.events[i].Done {
			r.j.events[i].Elapsed = elapsed
			r.j.events[i].Done = true
			r.j.events[i].Err = err
			return
		}
	}
}

// StageCounters implements core.Observer.
func (r *jobRecorder) StageCounters(stage string, snap par.Snapshot) {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	for i := len(r.j.events) - 1; i >= 0; i-- {
		if r.j.events[i].Stage == stage {
			r.j.events[i].Counters = snap
			r.j.events[i].HasCounters = true
			return
		}
	}
}
