package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

// StageMetrics aggregates one pipeline stage over every scan the
// service has processed. The latency aggregates are backed by the
// fixed-bucket obs histograms exported on /metrics, so the Go snapshot
// and the Prometheus scrape always agree.
type StageMetrics struct {
	// Count is the number of completed executions of the stage.
	Count int
	// Errors counts executions that failed (including cancellations).
	Errors int
	// Total and Max summarize the stage wall-clock time.
	Total time.Duration
	Max   time.Duration
	// P50, P90 and P99 are histogram-estimated latency quantiles — the
	// continuous form of the paper's Figure 6 per-stage timings.
	P50, P90, P99 time.Duration
}

// Mean returns the average stage duration (zero when Count is zero).
func (m StageMetrics) Mean() time.Duration {
	if m.Count == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Count)
}

// Metrics is an aggregate snapshot across all scans and sessions.
type Metrics struct {
	// Scans counts finished scans. Every finished scan lands in exactly
	// one of the three outcome buckets below or completed cleanly:
	// Degraded (deadline expired after the surface stage, rigid-only
	// fallback delivered — even when the deadline is also observed as an
	// error mid-degradation), Canceled (context cancellation or deadline
	// expiry before the degradation point), or Failed (any other error).
	// Failed includes Canceled for backward compatibility; Degraded and
	// Canceled never overlap.
	Scans    int
	Failed   int
	Degraded int
	Canceled int
	// Shed counts submissions rejected with ErrQueueFull — both queue
	// overflow and early elective-QoS shedding. Shed submissions never
	// become scans, so they are tracked separately instead of silently
	// vanishing from the aggregates.
	Shed int
	// Updates counts finished scans that ran the incremental re-solve
	// path (a subset of Scans); UpdateFallbacks counts update
	// submissions that ran as full registrations because the session had
	// no baseline yet.
	Updates         int
	UpdateFallbacks int
	// WarmIterationsSaved totals the GMRES iterations the warm-started
	// updates saved relative to their sessions' baseline cold solves.
	WarmIterationsSaved int
	// PCCacheHits / PCCacheMisses count preconditioner-cache outcomes
	// across delivered incremental solves.
	PCCacheHits   int
	PCCacheMisses int
	// SolveNotConverged counts successfully delivered scans whose GMRES
	// solve stopped at MaxIter without reaching tolerance — previously
	// indistinguishable from a converged solve in service metrics.
	SolveNotConverged int
	// AssemblyFlops totals the per-rank FEM assembly work reported by
	// the par counters, and AssemblyImbalanceMax tracks the worst
	// max/mean rank imbalance seen — the quantity the paper's load
	// balancing discussion revolves around.
	AssemblyFlops        float64
	AssemblyImbalanceMax float64
	// Stages maps core.Stage* names to their aggregates.
	Stages map[string]StageMetrics
}

// String renders the snapshot as a compact report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scans=%d failed=%d degraded=%d canceled=%d shed=%d notconverged=%d assemblyGflop=%.3f\n",
		m.Scans, m.Failed, m.Degraded, m.Canceled, m.Shed, m.SolveNotConverged, m.AssemblyFlops/1e9)
	if m.Updates > 0 || m.UpdateFallbacks > 0 {
		fmt.Fprintf(&b, "updates=%d fallbacks=%d warmItersSaved=%d pcCacheHit=%d pcCacheMiss=%d\n",
			m.Updates, m.UpdateFallbacks, m.WarmIterationsSaved, m.PCCacheHits, m.PCCacheMisses)
	}
	names := make([]string, 0, len(m.Stages))
	for n := range m.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sm := m.Stages[n]
		fmt.Fprintf(&b, "  %-28s n=%-3d err=%-2d p50=%8.3fs p99=%8.3fs max=%8.3fs\n",
			n, sm.Count, sm.Errors, sm.P50.Seconds(), sm.P99.Seconds(), sm.Max.Seconds())
	}
	return b.String()
}

// aggregator accumulates service-wide aggregates. It doubles as the
// service-wide core.Observer, so every pipeline stage of every job
// feeds it directly; the latency distributions live in the obs registry
// (shared with the /metrics endpoint) while scan-outcome counts are
// kept under the mutex for the typed Metrics snapshot.
type aggregator struct {
	reg  *obs.Registry
	coll *obs.StageCollector

	mu              sync.Mutex
	scans           int
	failed          int
	degraded        int
	canceled        int
	shed            int
	notConverged    int
	submitted       int
	updates         int
	updateFallbacks int
	warmItersSaved  int
	pcCacheHits     int
	pcCacheMisses   int
	assemblyFlops   float64
	imbalanceMax    float64
	stageErrs       map[string]int
	stageSeen       map[string]bool
}

func (a *aggregator) init(reg *obs.Registry) {
	a.reg = reg
	a.coll = obs.NewStageCollector(reg)
	a.stageErrs = make(map[string]int)
	a.stageSeen = make(map[string]bool)
}

// StageStart implements core.Observer.
func (a *aggregator) StageStart(string) {}

// StageDone implements core.Observer.
func (a *aggregator) StageDone(stage string, elapsed time.Duration, err error) {
	a.mu.Lock()
	a.stageSeen[stage] = true
	if err != nil {
		a.stageErrs[stage]++
	}
	a.mu.Unlock()
	a.coll.StageDone(stage, elapsed, err)
}

// StageCounters implements core.Observer.
func (a *aggregator) StageCounters(stage string, snap par.Snapshot) {
	a.mu.Lock()
	a.assemblyFlops += snap.TotalFlops
	if snap.Imbalance > a.imbalanceMax {
		a.imbalanceMax = snap.Imbalance
	}
	a.mu.Unlock()
	a.coll.StageCounters(stage, snap)
}

// submittedScan records one accepted submission (for the shed rate).
func (a *aggregator) submittedScan() {
	a.mu.Lock()
	a.submitted++
	a.mu.Unlock()
	a.reg.Counter(obs.MetricSubmissions,
		"Scan submissions accepted into the queue.").Inc()
}

// shedScan records one load-shed submission (queue full).
func (a *aggregator) shedScan() {
	a.mu.Lock()
	a.shed++
	a.mu.Unlock()
	a.reg.Counter(obs.MetricShed,
		"Scan submissions rejected because the queue was full.").Inc()
}

// updateFellBack records an update job that ran as a full registration
// because its session had no baseline yet.
func (a *aggregator) updateFellBack() {
	a.mu.Lock()
	a.updateFallbacks++
	a.mu.Unlock()
	a.reg.Counter(obs.MetricUpdateFallbacks,
		"Update submissions that ran as full registrations (no baseline).").Inc()
}

// jobsEvicted records finished jobs dropped from the bounded admin
// retention window.
func (a *aggregator) jobsEvicted(n int) {
	if n <= 0 {
		return
	}
	a.reg.Counter(obs.MetricJobsEvicted,
		"Finished jobs evicted from the bounded admin retention window.").Add(float64(n))
}

// stageEventsDropped records per-job stage events discarded at the
// bounded event-history limit.
func (a *aggregator) stageEventsDropped(n int) {
	if n <= 0 {
		return
	}
	a.reg.Counter(obs.MetricStageEventsDropped,
		"Per-job stage events dropped at the bounded history limit.").Add(float64(n))
}

// flightDumped records one automatic flight-recorder dump by trigger.
func (a *aggregator) flightDumped(trigger string) {
	a.reg.Counter(obs.MetricFlightDumps,
		"Automatic flight-recorder dumps by trigger.",
		obs.Label{Key: "trigger", Value: trigger}).Inc()
}

// solverIterationBuckets spans per-solve GMRES iteration counts, from
// warm-started few-iteration updates up to a MaxIter-bound cold solve.
var solverIterationBuckets = []float64{1, 2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 500, 1000}

// entryResidualBuckets spans the entry relative residual: 1.0 is a
// cold start, anything well below it is a warm start paying off.
var entryResidualBuckets = []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1}

// scanDone records the outcome of one finished job in exactly one
// bucket. Degraded takes priority: a deadline observed mid-degradation
// (after the surface stage) is the clinical fallback working as
// designed, and must not leak into Canceled as well. kind is the
// effective processing path (an update that fell back reports as
// JobRegister); jobID annotates the latency histogram bucket as a
// trace_id exemplar, linking a bad bucket to a concrete /jobs/{id} and
// flight-recorder trail; elapsed is the worker wall-clock time of the
// job, fed to the update-vs-cold latency histograms when the scan was
// delivered.
func (a *aggregator) scanDone(kind JobKind, jobID string, elapsed time.Duration, res *core.Result, err error) {
	outcome := "completed"
	incr := res != nil && res.Incremental
	a.mu.Lock()
	a.scans++
	if incr {
		a.updates++
	}
	switch {
	case res != nil && res.Degraded:
		a.degraded++
		outcome = "degraded"
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		a.failed++
		a.canceled++
		outcome = "canceled"
	case err != nil:
		a.failed++
		outcome = "failed"
	default:
		if res != nil && !res.SolveStats.Converged {
			a.notConverged++
		}
		if incr && res.Update != nil {
			a.warmItersSaved += res.Update.IterationsSaved
			if res.Update.PCCacheHit {
				a.pcCacheHits++
			} else {
				a.pcCacheMisses++
			}
		}
	}
	a.mu.Unlock()
	a.reg.Counter(obs.MetricScans,
		"Finished scans by outcome.", obs.Label{Key: "outcome", Value: outcome}).Inc()
	if err == nil && res != nil {
		// Delivered (completed or degraded): the update-vs-cold latency
		// split of the scan wall-clock, one histogram per job kind, with
		// the job id as a trace exemplar on the bucket it lands in.
		a.reg.Histogram(obs.MetricScanSeconds,
			"Worker wall-clock time per delivered scan by processing path.",
			obs.DefaultLatencyBuckets, obs.Label{Key: "kind", Value: string(kind)}).
			ObserveExemplar(elapsed.Seconds(), "trace_id", jobID)
	}
	if outcome == "completed" && res != nil {
		st := res.SolveStats
		a.reg.Counter(obs.MetricSolverIterationsTotal,
			"GMRES iterations across all delivered scans.").Add(float64(st.Iterations))
		a.reg.Histogram(obs.MetricSolverIterations,
			"GMRES iterations per delivered solve.",
			solverIterationBuckets).ObserveExemplar(float64(st.Iterations), "trace_id", jobID)
		a.reg.Histogram(obs.MetricSolverEntryResidual,
			"Relative preconditioned residual of the initial iterate per solve.",
			entryResidualBuckets).Observe(st.EntryResRel)
		a.reg.Counter(obs.MetricSolverRestarts,
			"GMRES restart cycles beyond the first across delivered solves.").Add(float64(st.Restarts))
		a.reg.Counter(obs.MetricSolverStagnated,
			"GMRES restart cycles that reduced the residual by less than 1%.").Add(float64(st.StagnatedCycles))
		if st.Diverged {
			a.reg.Counter(obs.MetricSolverDiverged,
				"Delivered solves in which a restart cycle increased the residual.").Inc()
		}
		conv := "true"
		if !st.Converged {
			conv = "false"
			a.reg.Counter(obs.MetricSolverNonConverged,
				"Delivered scans whose GMRES solve hit MaxIter without converging.").Inc()
		}
		a.reg.Counter(obs.MetricSolverSolves,
			"Completed biomechanical solves by convergence.",
			obs.Label{Key: "converged", Value: conv}).Inc()
		if incr && res.Update != nil {
			a.reg.Counter(obs.MetricWarmItersSaved,
				"GMRES iterations saved by warm-started incremental updates.").
				Add(float64(res.Update.IterationsSaved))
			hit := "hit"
			if !res.Update.PCCacheHit {
				hit = "miss"
			}
			a.reg.Counter(obs.MetricPCCache,
				"Preconditioner cache outcomes of incremental solves.",
				obs.Label{Key: "result", Value: hit}).Inc()
		}
	}
}

// snapshot deep-copies the current aggregates: the returned Metrics
// shares no mutable state with the aggregator, so callers may hold or
// mutate it while scans keep completing.
func (a *aggregator) snapshot() Metrics {
	a.mu.Lock()
	out := Metrics{
		Scans:                a.scans,
		Failed:               a.failed,
		Degraded:             a.degraded,
		Canceled:             a.canceled,
		Shed:                 a.shed,
		Updates:              a.updates,
		UpdateFallbacks:      a.updateFallbacks,
		WarmIterationsSaved:  a.warmItersSaved,
		PCCacheHits:          a.pcCacheHits,
		PCCacheMisses:        a.pcCacheMisses,
		SolveNotConverged:    a.notConverged,
		AssemblyFlops:        a.assemblyFlops,
		AssemblyImbalanceMax: a.imbalanceMax,
	}
	stages := make([]string, 0, len(a.stageSeen))
	for s := range a.stageSeen {
		stages = append(stages, s)
	}
	errs := make(map[string]int, len(a.stageErrs))
	for s, n := range a.stageErrs {
		errs[s] = n
	}
	a.mu.Unlock()
	// Histogram reads take each instrument's own lock; doing them
	// outside the aggregator lock keeps snapshots off the hot path.
	out.Stages = make(map[string]StageMetrics, len(stages))
	for _, s := range stages {
		h := a.coll.StageHistogram(s).Summary()
		out.Stages[s] = StageMetrics{
			Count:  int(h.Count),
			Errors: errs[s],
			Total:  secondsToDuration(h.Sum),
			Max:    secondsToDuration(h.Max),
			P50:    secondsToDuration(h.P50),
			P90:    secondsToDuration(h.P90),
			P99:    secondsToDuration(h.P99),
		}
	}
	return out
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
