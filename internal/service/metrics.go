package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
)

// StageMetrics aggregates one pipeline stage over every scan the
// service has processed. The latency aggregates are backed by the
// fixed-bucket obs histograms exported on /metrics, so the Go snapshot
// and the Prometheus scrape always agree.
type StageMetrics struct {
	// Count is the number of completed executions of the stage.
	Count int
	// Errors counts executions that failed (including cancellations).
	Errors int
	// Total and Max summarize the stage wall-clock time.
	Total time.Duration
	Max   time.Duration
	// P50, P90 and P99 are histogram-estimated latency quantiles — the
	// continuous form of the paper's Figure 6 per-stage timings.
	P50, P90, P99 time.Duration
}

// Mean returns the average stage duration (zero when Count is zero).
func (m StageMetrics) Mean() time.Duration {
	if m.Count == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Count)
}

// Metrics is an aggregate snapshot across all scans and sessions.
type Metrics struct {
	// Scans counts finished scans. Every finished scan lands in exactly
	// one of the three outcome buckets below or completed cleanly:
	// Degraded (deadline expired after the surface stage, rigid-only
	// fallback delivered — even when the deadline is also observed as an
	// error mid-degradation), Canceled (context cancellation or deadline
	// expiry before the degradation point), or Failed (any other error).
	// Failed includes Canceled for backward compatibility; Degraded and
	// Canceled never overlap.
	Scans    int
	Failed   int
	Degraded int
	Canceled int
	// Shed counts submissions rejected with ErrQueueFull — both queue
	// overflow and early elective-QoS shedding. Shed submissions never
	// become scans, so they are tracked separately instead of silently
	// vanishing from the aggregates.
	Shed int
	// Updates counts finished scans that ran the incremental re-solve
	// path (a subset of Scans); UpdateFallbacks counts update
	// submissions that ran as full registrations because the session had
	// no baseline yet.
	Updates         int
	UpdateFallbacks int
	// WarmIterationsSaved totals the GMRES iterations the warm-started
	// updates saved relative to their sessions' baseline cold solves.
	WarmIterationsSaved int
	// PCCacheHits / PCCacheMisses count preconditioner-cache outcomes
	// across delivered incremental solves.
	PCCacheHits   int
	PCCacheMisses int
	// SolveNotConverged counts successfully delivered scans whose GMRES
	// solve stopped at MaxIter without reaching tolerance — previously
	// indistinguishable from a converged solve in service metrics.
	SolveNotConverged int
	// AssemblyFlops totals the per-rank FEM assembly work reported by
	// the par counters, and AssemblyImbalanceMax tracks the worst
	// max/mean rank imbalance seen — the quantity the paper's load
	// balancing discussion revolves around.
	AssemblyFlops        float64
	AssemblyImbalanceMax float64
	// Stages maps core.Stage* names to their aggregates.
	Stages map[string]StageMetrics
}

// String renders the snapshot as a compact report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scans=%d failed=%d degraded=%d canceled=%d shed=%d notconverged=%d assemblyGflop=%.3f\n",
		m.Scans, m.Failed, m.Degraded, m.Canceled, m.Shed, m.SolveNotConverged, m.AssemblyFlops/1e9)
	if m.Updates > 0 || m.UpdateFallbacks > 0 {
		fmt.Fprintf(&b, "updates=%d fallbacks=%d warmItersSaved=%d pcCacheHit=%d pcCacheMiss=%d\n",
			m.Updates, m.UpdateFallbacks, m.WarmIterationsSaved, m.PCCacheHits, m.PCCacheMisses)
	}
	names := make([]string, 0, len(m.Stages))
	for n := range m.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sm := m.Stages[n]
		fmt.Fprintf(&b, "  %-28s n=%-3d err=%-2d p50=%8.3fs p99=%8.3fs max=%8.3fs\n",
			n, sm.Count, sm.Errors, sm.P50.Seconds(), sm.P99.Seconds(), sm.Max.Seconds())
	}
	return b.String()
}

// aggregator accumulates service-wide aggregates. It doubles as the
// service-wide core.Observer, so every pipeline stage of every job
// feeds it directly; the latency distributions live in the obs registry
// (shared with the /metrics endpoint) while scan-outcome counts are
// kept under the mutex for the typed Metrics snapshot.
type aggregator struct {
	reg  *obs.Registry
	coll *obs.StageCollector

	mu              sync.Mutex
	scans           int
	failed          int
	degraded        int
	canceled        int
	shed            int
	notConverged    int
	submitted       int
	updates         int
	updateFallbacks int
	warmItersSaved  int
	pcCacheHits     int
	pcCacheMisses   int
	assemblyFlops   float64
	imbalanceMax    float64
	stageErrs       map[string]int
	stageSeen       map[string]bool
}

func (a *aggregator) init(reg *obs.Registry) {
	a.reg = reg
	a.coll = obs.NewStageCollector(reg)
	a.stageErrs = make(map[string]int)
	a.stageSeen = make(map[string]bool)
}

// StageStart implements core.Observer.
func (a *aggregator) StageStart(string) {}

// StageDone implements core.Observer.
func (a *aggregator) StageDone(stage string, elapsed time.Duration, err error) {
	a.mu.Lock()
	a.stageSeen[stage] = true
	if err != nil {
		a.stageErrs[stage]++
	}
	a.mu.Unlock()
	a.coll.StageDone(stage, elapsed, err)
}

// StageCounters implements core.Observer.
func (a *aggregator) StageCounters(stage string, snap par.Snapshot) {
	a.mu.Lock()
	a.assemblyFlops += snap.TotalFlops
	if snap.Imbalance > a.imbalanceMax {
		a.imbalanceMax = snap.Imbalance
	}
	a.mu.Unlock()
	a.coll.StageCounters(stage, snap)
}

// submittedScan records one accepted submission (for the shed rate).
func (a *aggregator) submittedScan() {
	a.mu.Lock()
	a.submitted++
	a.mu.Unlock()
	a.reg.Counter("brainsim_submissions_total",
		"Scan submissions accepted into the queue.").Inc()
}

// shedScan records one load-shed submission (queue full).
func (a *aggregator) shedScan() {
	a.mu.Lock()
	a.shed++
	a.mu.Unlock()
	a.reg.Counter("brainsim_shed_total",
		"Scan submissions rejected because the queue was full.").Inc()
}

// updateFellBack records an update job that ran as a full registration
// because its session had no baseline yet.
func (a *aggregator) updateFellBack() {
	a.mu.Lock()
	a.updateFallbacks++
	a.mu.Unlock()
	a.reg.Counter("brainsim_update_fallbacks_total",
		"Update submissions that ran as full registrations (no baseline).").Inc()
}

// scanDone records the outcome of one finished job in exactly one
// bucket. Degraded takes priority: a deadline observed mid-degradation
// (after the surface stage) is the clinical fallback working as
// designed, and must not leak into Canceled as well. kind is the
// effective processing path (an update that fell back reports as
// JobRegister); elapsed is the worker wall-clock time of the job, fed
// to the update-vs-cold latency histograms when the scan was delivered.
func (a *aggregator) scanDone(kind JobKind, elapsed time.Duration, res *core.Result, err error) {
	outcome := "completed"
	incr := res != nil && res.Incremental
	a.mu.Lock()
	a.scans++
	if incr {
		a.updates++
	}
	switch {
	case res != nil && res.Degraded:
		a.degraded++
		outcome = "degraded"
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		a.failed++
		a.canceled++
		outcome = "canceled"
	case err != nil:
		a.failed++
		outcome = "failed"
	default:
		if res != nil && !res.SolveStats.Converged {
			a.notConverged++
		}
		if incr && res.Update != nil {
			a.warmItersSaved += res.Update.IterationsSaved
			if res.Update.PCCacheHit {
				a.pcCacheHits++
			} else {
				a.pcCacheMisses++
			}
		}
	}
	a.mu.Unlock()
	a.reg.Counter("brainsim_scans_total",
		"Finished scans by outcome.", obs.Label{Key: "outcome", Value: outcome}).Inc()
	if err == nil && res != nil {
		// Delivered (completed or degraded): the update-vs-cold latency
		// split of the scan wall-clock, one histogram per job kind.
		a.reg.Histogram("brainsim_scan_seconds",
			"Worker wall-clock time per delivered scan by processing path.",
			obs.DefaultLatencyBuckets, obs.Label{Key: "kind", Value: string(kind)}).
			Observe(elapsed.Seconds())
	}
	if outcome == "completed" && res != nil {
		a.reg.Counter("brainsim_solver_iterations_total",
			"GMRES iterations across all delivered scans.").Add(float64(res.SolveStats.Iterations))
		conv := "true"
		if !res.SolveStats.Converged {
			conv = "false"
			a.reg.Counter("brainsim_solver_nonconverged_total",
				"Delivered scans whose GMRES solve hit MaxIter without converging.").Inc()
		}
		a.reg.Counter("brainsim_solver_solves_total",
			"Completed biomechanical solves by convergence.",
			obs.Label{Key: "converged", Value: conv}).Inc()
		if incr && res.Update != nil {
			a.reg.Counter("brainsim_warmstart_iterations_saved_total",
				"GMRES iterations saved by warm-started incremental updates.").
				Add(float64(res.Update.IterationsSaved))
			hit := "hit"
			if !res.Update.PCCacheHit {
				hit = "miss"
			}
			a.reg.Counter("brainsim_pc_cache_total",
				"Preconditioner cache outcomes of incremental solves.",
				obs.Label{Key: "result", Value: hit}).Inc()
		}
	}
}

// snapshot deep-copies the current aggregates: the returned Metrics
// shares no mutable state with the aggregator, so callers may hold or
// mutate it while scans keep completing.
func (a *aggregator) snapshot() Metrics {
	a.mu.Lock()
	out := Metrics{
		Scans:                a.scans,
		Failed:               a.failed,
		Degraded:             a.degraded,
		Canceled:             a.canceled,
		Shed:                 a.shed,
		Updates:              a.updates,
		UpdateFallbacks:      a.updateFallbacks,
		WarmIterationsSaved:  a.warmItersSaved,
		PCCacheHits:          a.pcCacheHits,
		PCCacheMisses:        a.pcCacheMisses,
		SolveNotConverged:    a.notConverged,
		AssemblyFlops:        a.assemblyFlops,
		AssemblyImbalanceMax: a.imbalanceMax,
	}
	stages := make([]string, 0, len(a.stageSeen))
	for s := range a.stageSeen {
		stages = append(stages, s)
	}
	errs := make(map[string]int, len(a.stageErrs))
	for s, n := range a.stageErrs {
		errs[s] = n
	}
	a.mu.Unlock()
	// Histogram reads take each instrument's own lock; doing them
	// outside the aggregator lock keeps snapshots off the hot path.
	out.Stages = make(map[string]StageMetrics, len(stages))
	for _, s := range stages {
		h := a.coll.StageHistogram(s).Summary()
		out.Stages[s] = StageMetrics{
			Count:  int(h.Count),
			Errors: errs[s],
			Total:  secondsToDuration(h.Sum),
			Max:    secondsToDuration(h.Max),
			P50:    secondsToDuration(h.P50),
			P90:    secondsToDuration(h.P90),
			P99:    secondsToDuration(h.P99),
		}
	}
	return out
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
