package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// StageMetrics aggregates one pipeline stage over every scan the
// service has processed.
type StageMetrics struct {
	// Count is the number of completed executions of the stage.
	Count int
	// Errors counts executions that failed (including cancellations).
	Errors int
	// Total and Max summarize the stage wall-clock time.
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average stage duration (zero when Count is zero).
func (m StageMetrics) Mean() time.Duration {
	if m.Count == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Count)
}

// Metrics is an aggregate snapshot across all scans and sessions.
type Metrics struct {
	// Scans counts finished scans; Failed, Degraded and Canceled break
	// them down (Canceled is the subset of Failed due to context
	// cancellation or deadline expiry before the degradation point).
	Scans    int
	Failed   int
	Degraded int
	Canceled int
	// AssemblyFlops totals the per-rank FEM assembly work reported by
	// the par counters, and AssemblyImbalanceMax tracks the worst
	// max/mean rank imbalance seen — the quantity the paper's load
	// balancing discussion revolves around.
	AssemblyFlops        float64
	AssemblyImbalanceMax float64
	// Stages maps core.Stage* names to their aggregates.
	Stages map[string]StageMetrics
}

// String renders the snapshot as a compact report.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scans=%d failed=%d degraded=%d canceled=%d assemblyGflop=%.3f\n",
		m.Scans, m.Failed, m.Degraded, m.Canceled, m.AssemblyFlops/1e9)
	names := make([]string, 0, len(m.Stages))
	for n := range m.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sm := m.Stages[n]
		fmt.Fprintf(&b, "  %-28s n=%-3d err=%-2d mean=%8.3fs max=%8.3fs\n",
			n, sm.Count, sm.Errors, sm.Mean().Seconds(), sm.Max.Seconds())
	}
	return b.String()
}

// aggregator accumulates Metrics under a mutex. It doubles as the
// service-wide core.Observer, so every pipeline stage of every job
// feeds it directly.
type aggregator struct {
	mu sync.Mutex
	m  Metrics
}

func (a *aggregator) init() {
	a.m.Stages = make(map[string]StageMetrics)
}

// StageStart implements core.Observer.
func (a *aggregator) StageStart(string) {}

// StageDone implements core.Observer.
func (a *aggregator) StageDone(stage string, elapsed time.Duration, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sm := a.m.Stages[stage]
	sm.Count++
	sm.Total += elapsed
	if elapsed > sm.Max {
		sm.Max = elapsed
	}
	if err != nil {
		sm.Errors++
	}
	a.m.Stages[stage] = sm
}

// StageCounters implements core.Observer.
func (a *aggregator) StageCounters(_ string, snap par.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.AssemblyFlops += snap.TotalFlops
	if snap.Imbalance > a.m.AssemblyImbalanceMax {
		a.m.AssemblyImbalanceMax = snap.Imbalance
	}
}

// scanDone records the outcome of one finished job.
func (a *aggregator) scanDone(res *core.Result, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m.Scans++
	switch {
	case err != nil:
		a.m.Failed++
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			a.m.Canceled++
		}
	case res != nil && res.Degraded:
		a.m.Degraded++
	}
}

// snapshot deep-copies the current aggregates.
func (a *aggregator) snapshot() Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.m
	out.Stages = make(map[string]StageMetrics, len(a.m.Stages))
	for k, v := range a.m.Stages {
		out.Stages[k] = v
	}
	return out
}
