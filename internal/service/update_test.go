package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/phantom"
)

// streamCase generates a baseline scan plus a later scan of the same
// case with a grown brain shift — the streaming acquisition pattern the
// update path exists for.
func streamCase(n int, seed int64) (*phantom.Case, *phantom.Case) {
	p1 := phantom.DefaultParams(n)
	p1.NoiseStd = 2
	p1.ShiftMagnitude = 3
	p1.Seed = seed
	p2 := p1
	p2.ShiftMagnitude = 5
	return phantom.Generate(p1), phantom.Generate(p2)
}

// TestServiceUpdateFlow drives the first-class update job kind end to
// end: open with a SessionSpec, register the baseline, then stream an
// update and check the job surface and aggregate metrics reflect the
// incremental path.
func TestServiceUpdateFlow(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c1, c2 := streamCase(24, 11)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c1.Preop, PreopLabels: c1.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(context.Background(), "or", c1.Intraop); err != nil {
		t.Fatal(err)
	}

	j, err := svc.SubmitUpdate(context.Background(), "or", c2.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if j.Kind != JobUpdate {
		t.Errorf("job kind = %q, want %q", j.Kind, JobUpdate)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental || res.Update == nil {
		t.Fatal("update job did not take the incremental path")
	}
	if !res.Update.WarmStarted || !res.Update.PCCacheHit {
		t.Fatalf("update did not reuse the baseline: %+v", res.Update)
	}
	if j.FellBack() {
		t.Error("update with a baseline reported FellBack")
	}
	st := j.Status()
	if st.Kind != "update" || st.FellBack {
		t.Errorf("job status kind=%q fellBack=%v, want update/false", st.Kind, st.FellBack)
	}

	m := svc.Metrics()
	if m.Scans != 2 || m.Updates != 1 || m.UpdateFallbacks != 0 {
		t.Errorf("metrics = %+v, want Scans=2 Updates=1 UpdateFallbacks=0", m)
	}
	if m.PCCacheHits != 1 || m.PCCacheMisses != 0 {
		t.Errorf("pc cache metrics hit=%d miss=%d, want 1/0", m.PCCacheHits, m.PCCacheMisses)
	}
	if m.WarmIterationsSaved != res.Update.IterationsSaved {
		t.Errorf("WarmIterationsSaved = %d, want %d", m.WarmIterationsSaved, res.Update.IterationsSaved)
	}
	if !strings.Contains(m.String(), "updates=1") {
		t.Errorf("metrics report missing update line:\n%s", m.String())
	}
}

// TestServiceUpdateFallsBackWithoutBaseline: an update submitted before
// any full registration must run as a cold registration, be marked
// FellBack, and count in Metrics.UpdateFallbacks — the streaming client
// never sees an error for being first.
func TestServiceUpdateFallsBackWithoutBaseline(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c1, c2 := streamCase(24, 12)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c1.Preop, PreopLabels: c1.PreopLabels}); err != nil {
		t.Fatal(err)
	}

	res, err := svc.Update(context.Background(), "or", c1.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("first update reported incremental without a baseline")
	}
	jobs := svc.Jobs()
	if len(jobs) != 1 || !jobs[0].FellBack() {
		t.Fatalf("fallback not recorded on the job: %+v", jobs)
	}
	m := svc.Metrics()
	if m.UpdateFallbacks != 1 || m.Updates != 0 {
		t.Errorf("metrics = %+v, want UpdateFallbacks=1 Updates=0", m)
	}

	// The fallback established the baseline: the next update is real.
	res2, err := svc.Update(context.Background(), "or", c2.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Incremental {
		t.Fatal("second update did not take the incremental path")
	}
	if m := svc.Metrics(); m.Updates != 1 || m.UpdateFallbacks != 1 {
		t.Errorf("metrics = %+v, want Updates=1 UpdateFallbacks=1", m)
	}
}

// TestServiceElectiveQoSShedding is a white-box admission test: with no
// workers draining the queue, elective sessions must be shed once the
// queue is half full while urgent sessions may fill it entirely.
func TestServiceElectiveQoSShedding(t *testing.T) {
	svc := &Service{
		opts:     Options{QueueDepth: 4, Registry: obs.NewRegistry()},
		queue:    make(chan *Job, 4),
		sessions: make(map[string]*managedSession),
		jobs:     make(map[string]*Job),
	}
	svc.agg.init(svc.opts.Registry)
	defer svc.Close() // no workers: close only drains bookkeeping

	c, _ := streamCase(24, 13)
	if err := svc.Open(SessionSpec{ID: "urgent-or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Open(SessionSpec{ID: "batch", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels, QoS: QoSElective}); err != nil {
		t.Fatal(err)
	}

	// Below the half-full mark the elective session is admitted.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(context.Background(), "batch", c.Intraop); err != nil {
			t.Fatalf("elective submit %d under light load: %v", i, err)
		}
	}
	// At half capacity every further elective submission is shed ...
	if _, err := svc.SubmitUpdate(context.Background(), "batch", c.Intraop); !errors.Is(err, ErrQueueFull) {
		t.Errorf("elective submit at half capacity: err = %v, want ErrQueueFull", err)
	}
	// ... while urgent scans may use the reserved back half.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(context.Background(), "urgent-or", c.Intraop); err != nil {
			t.Fatalf("urgent submit %d into reserved headroom: %v", i, err)
		}
	}
	if _, err := svc.Submit(context.Background(), "urgent-or", c.Intraop); !errors.Is(err, ErrQueueFull) {
		t.Errorf("urgent submit into full queue: err = %v, want ErrQueueFull", err)
	}
	m := svc.Metrics()
	if m.Shed != 2 {
		t.Errorf("Shed = %d, want 2 (one elective, one urgent)", m.Shed)
	}
}

// TestSessionSpecValidate reports every defect at once.
func TestSessionSpecValidate(t *testing.T) {
	c, _ := streamCase(24, 14)
	bad := SessionSpec{Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels, QoS: "stat"}
	bad.Config.KNN = 0
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"ID must be non-empty", "stat", "KNN"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validation error %q missing %q", err, want)
		}
	}
	good := SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
