// Package service turns the registration pipeline into a concurrent
// intraoperative service: it owns the surgical sessions of many
// simultaneous operating rooms, runs newly acquired scans through a
// bounded worker pool, and exposes per-stage progress events and
// aggregate metrics for every scan. This is the deployment shape the
// paper describes — the computational core runs remotely "during
// surgery", with the surgeon waiting on a hard time budget — so every
// scan is driven by a context.Context: a cancelled context aborts the
// solve within one GMRES restart cycle, and an expired deadline after
// the surface stage degrades to the rigid-only result instead of
// failing the scan (see core.Pipeline.RunContext).
//
// The service is also the anchor of the observability surface: its obs
// registry backs both the typed Metrics snapshot and the Prometheus
// /metrics endpoint of the admin server (see admin.go), and finished
// jobs are retained for a while so /jobs/{id} can answer after the
// fact.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/volume"
)

// Typed service errors, matched with errors.Is.
var (
	// ErrClosed is returned once the service has been closed.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull is returned when the scan queue is at capacity; the
	// caller should retry or shed load (the surgeon cannot wait on an
	// unbounded backlog anyway).
	ErrQueueFull = errors.New("service: scan queue full")
	// ErrUnknownSession is returned for session ids never opened (or
	// already closed).
	ErrUnknownSession = errors.New("service: unknown session")
	// ErrDuplicateSession is returned when opening an id twice.
	ErrDuplicateSession = errors.New("service: session already open")
	// ErrUnknownJob is returned by Job lookups for ids never assigned
	// or already evicted from the retention window.
	ErrUnknownJob = errors.New("service: unknown job")
)

// defaultJobRetention bounds how many finished jobs are kept
// addressable on the admin surface before the oldest are evicted.
const defaultJobRetention = 1024

// Options configures the service.
type Options struct {
	// Workers is the worker-pool size: the number of scans registered
	// concurrently across all sessions. Default 2.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted scans.
	// Submit fails with ErrQueueFull beyond it. Default 16.
	QueueDepth int
	// ScanTimeout, when positive, imposes a default per-scan deadline on
	// top of the caller's context — the paper's intraoperative time
	// budget. Zero means no service-imposed deadline.
	ScanTimeout time.Duration
	// Registry, when non-nil, receives the service's metrics (stage
	// histograms, outcome counters, assembly gauges). Nil allocates a
	// private registry, reachable via Service.Registry.
	Registry *obs.Registry
	// JobRetention bounds how many jobs stay addressable on the admin
	// surface; the oldest beyond it are evicted (counted in
	// brainsim_jobs_evicted_total). Default 1024.
	JobRetention int
	// FlightRecorderSize bounds each session's flight-recorder ring (the
	// per-session black box of recent spans, events and log records).
	// Default 256 records.
	FlightRecorderSize int
	// FlightDumpDir, when non-empty, additionally writes every automatic
	// flight-recorder dump as a JSONL file "<session>-<job>.jsonl" in
	// that directory; dumps are always retrievable in memory via
	// /sessions/{id}/flightrecorder regardless.
	FlightDumpDir string
	// RuntimeSampleInterval, when positive, starts a background sampler
	// feeding runtime health (heap, goroutines, GC pauses) into the
	// registry at that period. The /metrics endpoint also samples at
	// scrape time, so zero just means scrape-driven sampling only.
	RuntimeSampleInterval time.Duration
	// Logger receives the service's structured log records (through an
	// obs.ContextHandler, so records carry session/job/span identity).
	// Nil discards them.
	Logger *slog.Logger
	// ArtifactStore, when non-nil, is injected into every opened
	// session whose Config does not already carry one: sessions sharing
	// a preoperative volume then share the content-addressed stage
	// cache (and deduplicate in-flight preop computation), so the
	// second registration of the same preop skips straight to the
	// intraoperative stages. Its stats are served at /artifacts on the
	// admin surface.
	ArtifactStore *artifact.Store
}

// Service is a concurrent registration service. Create it with New,
// open one session per surgery, then Submit intraoperative scans; all
// methods are safe for concurrent use.
type Service struct {
	opts  Options
	queue chan *Job
	wg    sync.WaitGroup
	agg   aggregator
	rt    *obs.RuntimeCollector
	log   *slog.Logger

	// stopSampler ends the background runtime sampler (nil when none).
	stopSampler chan struct{}

	// workersAlive tracks workers that have started and not yet exited —
	// the liveness signal behind /healthz.
	workersAlive atomic.Int64

	mu       sync.Mutex
	sessions map[string]*managedSession
	closed   bool
	jobSeq   int
	jobs     map[string]*Job
	jobOrder []string
}

// managedSession pairs a core.Session with the gate that serializes
// its scans: the session's statistical tissue model mutates from scan
// to scan, so two scans of one surgery must not interleave, while scans
// of different surgeries run in parallel across the pool. The gate is
// a one-slot channel rather than a mutex so that no lock is held
// across the scan itself (the whole registration pipeline would sit in
// the critical section — see the lockscope analyzer) and a waiting
// worker can abandon the wait when the job's context dies.
type managedSession struct {
	id   string
	qos  QoSClass
	gate chan struct{}
	sess *core.Session
	// fr is the session's flight recorder: the bounded ring of recent
	// spans, events and log records that backs the automatic anomaly
	// dumps and the /sessions/{id}/flightrecorder endpoint.
	fr *obs.FlightRecorder

	// dumpMu guards lastDump. It is a leaf lock: never acquired while
	// holding Service.mu or any instrument lock.
	dumpMu   sync.Mutex
	lastDump *FlightDump
}

func newManagedSession(id string, qos QoSClass, sess *core.Session, frSize int) *managedSession {
	return &managedSession{
		id: id, qos: qos, gate: make(chan struct{}, 1), sess: sess,
		fr: obs.NewFlightRecorder(frSize),
	}
}

// setDump stores the session's most recent automatic dump.
func (ms *managedSession) setDump(d *FlightDump) {
	ms.dumpMu.Lock()
	ms.lastDump = d
	ms.dumpMu.Unlock()
}

// LastDump returns the most recent automatic flight-recorder dump of
// the session, or nil if none was triggered yet.
func (ms *managedSession) LastDump() *FlightDump {
	ms.dumpMu.Lock()
	defer ms.dumpMu.Unlock()
	return ms.lastDump
}

// FlightDump is one automatically captured flight-recorder snapshot:
// the records that led up to a job anomaly (degradation, fallback,
// shed, non-convergence, failure), frozen at the moment the trigger
// fired while live recording continued.
type FlightDump struct {
	SessionID string             `json:"session_id"`
	JobID     string             `json:"job_id,omitempty"`
	Trigger   string             `json:"trigger"` // degraded | fallback | shed | nonconverged | failed
	Time      time.Time          `json:"time"`
	Records   []obs.FlightRecord `json:"records"`
}

// acquire claims the session's scan slot, or gives up when ctx ends
// first — a queued job whose caller has gone away should release its
// worker, not wait for a slot it will never use.
func (ms *managedSession) acquire(ctx context.Context) error {
	select {
	case ms.gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the scan slot taken by acquire.
func (ms *managedSession) release() { <-ms.gate }

// New starts a service with the given options.
func New(opts Options) *Service {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.JobRetention <= 0 {
		opts.JobRetention = defaultJobRetention
	}
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	s := &Service{
		opts:     opts,
		queue:    make(chan *Job, opts.QueueDepth),
		sessions: make(map[string]*managedSession),
		jobs:     make(map[string]*Job),
		rt:       obs.NewRuntimeCollector(opts.Registry),
		log:      opts.Logger,
	}
	s.agg.init(opts.Registry)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		s.workersAlive.Add(1)
		go s.worker()
	}
	if opts.RuntimeSampleInterval > 0 {
		s.stopSampler = make(chan struct{})
		s.wg.Add(1)
		go s.sampleRuntime(opts.RuntimeSampleInterval)
	}
	return s
}

// sampleRuntime feeds runtime health into the registry until Close.
func (s *Service) sampleRuntime(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.rt.Sample()
		case <-s.stopSampler:
			return
		}
	}
}

// SampleRuntime takes one runtime-health sample into the registry —
// called by the admin /metrics handler at scrape time so the exposition
// is current even without a background sampler.
func (s *Service) SampleRuntime() {
	s.rt.Sample()
}

// Registry returns the obs registry holding the service's metrics —
// the same one the admin server exposes on /metrics.
func (s *Service) Registry() *obs.Registry {
	return s.opts.Registry
}

// ArtifactStore returns the shared stage cache configured at
// construction, or nil when the service runs uncached.
func (s *Service) ArtifactStore() *artifact.Store {
	return s.opts.ArtifactStore
}

// logger returns the configured logger, or the nop logger for a
// zero-value Service built without New (white-box tests).
func (s *Service) logger() *slog.Logger {
	if s.log == nil {
		return obs.NopLogger()
	}
	return s.log
}

// QoSClass classifies a session's scans for admission control under
// load. The distinction matters only when the queue backs up.
type QoSClass string

const (
	// QoSUrgent scans (the default) may fill the whole queue — a scan
	// the surgeon is waiting on is never shed while capacity remains.
	QoSUrgent QoSClass = "urgent"
	// QoSElective scans are shed once the queue is half full, keeping
	// headroom for urgent sessions: batch re-processing and research
	// traffic yields to the operating room.
	QoSElective QoSClass = "elective"
)

// SessionSpec describes a surgical session to open. The struct form
// (rather than positional arguments) leaves room for per-session policy
// to grow without breaking every caller.
type SessionSpec struct {
	// ID names the session; required and unique among open sessions.
	ID string
	// Config is the pipeline configuration.
	Config core.Config
	// Preop and PreopLabels are the preoperative preparation.
	Preop       *volume.Scalar
	PreopLabels *volume.Labels
	// QoS is the admission class under load; empty means QoSUrgent.
	QoS QoSClass
}

// Validate reports every problem with the spec at once, mirroring
// core.Config.Validate: the operating room is not the place to discover
// a bad parameter mid-scan.
func (sp SessionSpec) Validate() error {
	var errs []error
	if sp.ID == "" {
		errs = append(errs, errors.New("ID must be non-empty"))
	}
	switch sp.QoS {
	case "", QoSUrgent, QoSElective:
	default:
		errs = append(errs, fmt.Errorf("unknown QoS class %q", sp.QoS))
	}
	if err := sp.Config.Validate(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("service: invalid session spec: %w", errors.Join(errs...))
}

// Open prepares a surgical session from the preoperative data described
// by spec. The spec is validated up front.
func (s *Service) Open(spec SessionSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	qos := spec.QoS
	if qos == "" {
		qos = QoSUrgent
	}
	if spec.Config.ArtifactStore == nil {
		spec.Config.ArtifactStore = s.opts.ArtifactStore
	}
	sess, err := core.NewSession(spec.Config, spec.Preop, spec.PreopLabels)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.sessions[spec.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateSession, spec.ID)
	}
	s.sessions[spec.ID] = newManagedSession(spec.ID, qos, sess, s.opts.FlightRecorderSize)
	return nil
}

// CloseSession forgets a session. Scans already queued or in flight
// finish normally; new Submits fail with ErrUnknownSession.
func (s *Service) CloseSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	delete(s.sessions, id)
	return nil
}

// Session returns the underlying core.Session (e.g. to inspect
// ScanCount or Results between scans). Do not call its Register or
// Update methods directly while the service is running jobs for it.
func (s *Service) Session(id string) (*core.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return ms.sess, nil
}

// managed returns the managed session wrapper for id.
func (s *Service) managed(id string) (*managedSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return ms, nil
}

// FlightDumpInfo summarizes one automatic dump on /sessions (the full
// records are on /sessions/{id}/flightrecorder?dump=last).
type FlightDumpInfo struct {
	JobID   string    `json:"job_id,omitempty"`
	Trigger string    `json:"trigger"`
	Time    time.Time `json:"time"`
	Records int       `json:"records"`
}

// SessionStatus is the wire form of one open session on /sessions.
type SessionStatus struct {
	ID          string `json:"id"`
	QoS         string `json:"qos"`
	HasBaseline bool   `json:"has_baseline"`
	Scans       int    `json:"scans"`
	// FlightRecords / FlightCapacity / FlightTotal describe the
	// session's flight-recorder ring: currently retained, the bound, and
	// ever recorded.
	FlightRecords  int             `json:"flight_records"`
	FlightCapacity int             `json:"flight_capacity"`
	FlightTotal    uint64          `json:"flight_total"`
	LastDump       *FlightDumpInfo `json:"last_dump,omitempty"`
}

func (ms *managedSession) status() SessionStatus {
	st := SessionStatus{
		ID:             ms.id,
		QoS:            string(ms.qos),
		HasBaseline:    ms.sess.HasBaseline(),
		Scans:          ms.sess.ScanCount(),
		FlightRecords:  ms.fr.Len(),
		FlightCapacity: ms.fr.Capacity(),
		FlightTotal:    ms.fr.Total(),
	}
	if d := ms.LastDump(); d != nil {
		st.LastDump = &FlightDumpInfo{
			JobID: d.JobID, Trigger: d.Trigger, Time: d.Time, Records: len(d.Records),
		}
	}
	return st
}

// Sessions snapshots every open session for the admin surface, sorted
// by id.
func (s *Service) Sessions() []SessionStatus {
	s.mu.Lock()
	mss := make([]*managedSession, 0, len(s.sessions))
	for _, ms := range s.sessions {
		mss = append(mss, ms)
	}
	s.mu.Unlock()
	// Status reads take session-local leaf locks; outside s.mu.
	out := make([]SessionStatus, 0, len(mss))
	for _, ms := range mss {
		out = append(out, ms.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionFlightRecords returns the live contents of a session's flight
// recorder, oldest first.
func (s *Service) SessionFlightRecords(id string) ([]obs.FlightRecord, error) {
	ms, err := s.managed(id)
	if err != nil {
		return nil, err
	}
	return ms.fr.Snapshot(), nil
}

// SessionLastDump returns a session's most recent automatic
// flight-recorder dump (nil when no anomaly has triggered one).
func (s *Service) SessionLastDump(id string) (*FlightDump, error) {
	ms, err := s.managed(id)
	if err != nil {
		return nil, err
	}
	return ms.LastDump(), nil
}

// Submit enqueues one newly acquired intraoperative scan for a full
// registration of the given session and returns immediately with a Job
// handle; use Job.Wait for the result. ctx governs the whole job —
// queue wait included — and is further bounded by Options.ScanTimeout
// once the job starts. A full queue fails fast with ErrQueueFull rather
// than blocking the scanner; shed submissions are counted
// (Metrics.Shed, brainsim_shed_total) so overload is visible on the
// admin surface. Sessions opened with QoSElective are shed earlier,
// once the queue is half full.
func (s *Service) Submit(ctx context.Context, sessionID string, intraop *volume.Scalar) (*Job, error) {
	return s.submit(ctx, sessionID, intraop, JobRegister)
}

// SubmitUpdate enqueues one streaming intraoperative scan for an
// incremental re-solve against the session's baseline (see
// core.Session.Update). A session without a baseline — no successful
// full registration yet — runs the job as a full registration instead
// and marks it FellBack; admission and context semantics match Submit.
func (s *Service) SubmitUpdate(ctx context.Context, sessionID string, intraop *volume.Scalar) (*Job, error) {
	return s.submit(ctx, sessionID, intraop, JobUpdate)
}

func (s *Service) submit(ctx context.Context, sessionID string, intraop *volume.Scalar, kind JobKind) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if intraop == nil {
		return nil, fmt.Errorf("service: nil intraoperative scan")
	}
	// Explicit unlocks rather than a deferred one: the metric updates
	// at the end take the aggregator's own lock, which must not nest
	// inside s.mu (lockscope).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ms, ok := s.sessions[sessionID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, sessionID)
	}
	if ms.qos == QoSElective && len(s.queue) >= cap(s.queue)/2 {
		// Elective sessions only use the front half of the queue; the
		// back half is reserved headroom for urgent scans.
		s.mu.Unlock()
		s.shedJob(ms, kind, "elective headroom")
		return nil, ErrQueueFull
	}
	s.jobSeq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.jobSeq),
		SessionID: sessionID,
		Kind:      kind,
		ctx:       ctx,
		ms:        ms,
		intraop:   intraop,
		enqueued:  time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- j:
		evicted := s.retainJobLocked(j)
		s.mu.Unlock()
		s.agg.submittedScan()
		s.agg.jobsEvicted(evicted)
		return j, nil
	default:
		s.jobSeq-- // the id was never issued
		s.mu.Unlock()
		s.shedJob(ms, kind, "queue full")
		return nil, ErrQueueFull
	}
}

// shedJob accounts one load-shed submission: the shed metric, a
// job.shed event in the session's flight recorder, and an automatic
// dump — a shed scan is an anomaly the surgeon will ask about. Called
// WITHOUT s.mu held.
func (s *Service) shedJob(ms *managedSession, kind JobKind, why string) {
	s.agg.shedScan()
	ms.fr.Record(obs.FlightRecord{
		Time:    time.Now(),
		Kind:    "event",
		Session: ms.id,
		Name:    obs.EventJobShed,
		Attrs:   map[string]any{"kind": string(kind), "reason": why},
	})
	s.dumpFlight(ms, "", "shed")
	s.logger().Warn("scan shed", "session", ms.id, "kind", string(kind), "reason", why)
}

// retainJobLocked registers the job for admin lookup and evicts the
// oldest beyond the retention window, returning how many were evicted
// (the caller feeds the eviction metric after releasing s.mu — metric
// locks never nest inside it). Caller holds s.mu.
func (s *Service) retainJobLocked(j *Job) (evicted int) {
	retention := s.opts.JobRetention
	if retention <= 0 {
		retention = defaultJobRetention
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobOrder) > retention {
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
		evicted++
	}
	return evicted
}

// Job returns the job with the given id, if still retained.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs returns the retained jobs, oldest first.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth reports how many accepted scans are waiting for a worker.
func (s *Service) QueueDepth() int {
	return len(s.queue)
}

// QueueCapacity reports the configured queue bound.
func (s *Service) QueueCapacity() int {
	return cap(s.queue)
}

// WorkersAlive reports how many pool workers are currently running —
// Options.Workers until Close drains them.
func (s *Service) WorkersAlive() int {
	return int(s.workersAlive.Load())
}

// Register is the synchronous convenience wrapper: Submit + Wait.
func (s *Service) Register(ctx context.Context, sessionID string, intraop *volume.Scalar) (*core.Result, error) {
	j, err := s.Submit(ctx, sessionID, intraop)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Update is the synchronous convenience wrapper: SubmitUpdate + Wait.
func (s *Service) Update(ctx context.Context, sessionID string, intraop *volume.Scalar) (*core.Result, error) {
	j, err := s.SubmitUpdate(ctx, sessionID, intraop)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Metrics returns a snapshot of the aggregate per-stage metrics
// accumulated over every scan processed so far.
func (s *Service) Metrics() Metrics {
	return s.agg.snapshot()
}

// Close stops the service: no new sessions or scans are accepted,
// queued jobs are drained, and Close returns once every worker has
// exited. It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	if s.stopSampler != nil {
		close(s.stopSampler)
	}
	s.wg.Wait()
	return nil
}

// worker drains the scan queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	defer s.workersAlive.Add(-1)
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued scan, recording per-stage events on the
// job and feeding the aggregate metrics. The scan runs under a context
// stamped with the session/job identity and the session's flight
// recorder, so every span the pipeline opens, every event the solver
// emits, and every log record written below lands in the session's
// black box with matching ids.
func (s *Service) runJob(j *Job) {
	defer close(j.done)
	start := time.Now()
	j.setStarted(start)
	ctx := obs.WithFlightRecorder(
		obs.WithJobID(obs.WithSessionID(j.ctx, j.SessionID), j.ID), j.ms.fr)
	if s.opts.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.ScanTimeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		// Abandoned while queued (caller gave up or deadline passed):
		// don't waste a worker on it.
		j.finish(nil, err)
		s.agg.scanDone(j.Kind, j.ID, 0, nil, err)
		return
	}
	// Scans of one session are serialized by the session gate; the
	// observer swap below is protected by the same slot.
	if err := j.ms.acquire(ctx); err != nil {
		j.finish(nil, err)
		s.agg.scanDone(j.Kind, j.ID, 0, nil, err)
		return
	}
	// The effective kind is resolved under the gate: HasBaseline is
	// written by the previous scan of this session, which the gate
	// serializes against.
	kind := j.Kind
	if kind == JobUpdate && !j.ms.sess.HasBaseline() {
		kind = JobRegister
		j.markFellBack()
		s.agg.updateFellBack()
		obs.Emit(ctx, obs.EventJobFallback, map[string]any{"requested": string(JobUpdate)})
		s.logger().WarnContext(ctx, "update fell back to full registration: no baseline")
	}
	s.logger().InfoContext(ctx, "scan started", "kind", string(kind),
		"queue_wait_ms", float64(start.Sub(j.enqueued))/float64(time.Millisecond))
	j.ms.sess.SetObserver(core.MultiObserver(&jobRecorder{j: j, agg: &s.agg}, &s.agg))
	var res *core.Result
	var err error
	if kind == JobUpdate {
		res, err = j.ms.sess.Update(ctx, j.intraop)
	} else {
		res, err = j.ms.sess.Register(ctx, j.intraop)
	}
	j.ms.sess.SetObserver(nil)
	j.ms.release()
	j.finish(res, err)
	s.agg.scanDone(kind, j.ID, time.Since(start), res, err)

	// Anomaly triage: any of these outcomes freezes the flight recorder
	// into a retrievable dump. One dump per job, worst trigger wins.
	switch {
	case err != nil:
		obs.Emit(ctx, obs.EventJobFailed, map[string]any{"error": err.Error()})
		s.logger().ErrorContext(ctx, "scan failed", "error", err.Error())
		s.dumpFlight(j.ms, j.ID, "failed")
	case res != nil && res.Degraded:
		obs.Emit(ctx, obs.EventJobDegraded, nil)
		s.logger().WarnContext(ctx, "scan degraded to rigid-only result")
		s.dumpFlight(j.ms, j.ID, "degraded")
	case res != nil && !res.SolveStats.Converged:
		s.logger().WarnContext(ctx, "solve did not converge",
			"iterations", res.SolveStats.Iterations,
			"final_rel_residual", res.SolveStats.FinalResRel)
		s.dumpFlight(j.ms, j.ID, "nonconverged")
	case j.FellBack():
		s.dumpFlight(j.ms, j.ID, "fallback")
	default:
		s.logger().InfoContext(ctx, "scan completed", "kind", string(kind),
			"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
	}
}

// dumpFlight freezes the session's flight recorder into a FlightDump:
// retained on the session (served by /sessions/{id}/flightrecorder),
// optionally written as JSONL to Options.FlightDumpDir, and counted by
// trigger. Live recording continues in the ring.
func (s *Service) dumpFlight(ms *managedSession, jobID, trigger string) {
	d := &FlightDump{
		SessionID: ms.id,
		JobID:     jobID,
		Trigger:   trigger,
		Time:      time.Now(),
		Records:   ms.fr.Snapshot(),
	}
	ms.setDump(d)
	s.agg.flightDumped(trigger)
	if dir := s.opts.FlightDumpDir; dir != "" {
		name := ms.id
		if jobID != "" {
			name += "-" + jobID
		}
		path := filepath.Join(dir, name+".jsonl")
		if err := writeDumpFile(path, d.Records); err != nil {
			s.logger().Error("flight-recorder dump write failed", "path", path, "error", err.Error())
		}
	}
}

// writeDumpFile writes one dump as a JSONL file.
func writeDumpFile(path string, recs []obs.FlightRecord) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return obs.WriteFlightRecords(f, recs)
}
