package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// TestSharedArtifactStoreAcrossSessions is the service-level caching
// claim: two sessions opened on the same preoperative volume share the
// injected store, so the second session's registration hits the pure
// preop stages instead of recomputing them, and the results stay
// identical to the uncached session's.
func TestSharedArtifactStoreAcrossSessions(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := artifact.New(artifact.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 2, Registry: reg, ArtifactStore: store})
	defer svc.Close()

	c := testCase(24, 1)
	for _, id := range []string{"or-1", "or-2"} {
		if err := svc.Open(SessionSpec{ID: id, Config: fastConfig(),
			Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
			t.Fatal(err)
		}
	}

	j1, err := svc.Submit(context.Background(), "or-1", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses == 0 {
		t.Fatalf("first registration populated nothing: %+v", st)
	}

	j2, err := svc.Submit(context.Background(), "or-2", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("second session shared no cached preop work: %+v", st)
	}
	if len(res1.NodeDisplacements) != len(res2.NodeDisplacements) {
		t.Fatalf("node counts differ: %d vs %d",
			len(res1.NodeDisplacements), len(res2.NodeDisplacements))
	}
	for i, u := range res1.NodeDisplacements {
		if u != res2.NodeDisplacements[i] {
			t.Fatalf("node %d displacement differs between sessions: %v vs %v",
				i, u, res2.NodeDisplacements[i])
		}
	}

	// A spec that brings its own store keeps it: the injection only
	// fills the nil default.
	own, err := artifact.New(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.ArtifactStore = own
	if err := svc.Open(SessionSpec{ID: "or-own", Config: cfg,
		Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	j3, err := svc.Submit(context.Background(), "or-own", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := own.Stats(); st.Misses == 0 {
		t.Fatalf("session-private store was bypassed: %+v", st)
	}

	ts := httptest.NewServer(AdminHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/artifacts: status %d", resp.StatusCode)
	}
	var got artifact.Stats
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Hits == 0 || got.Misses == 0 {
		t.Fatalf("/artifacts reports no traffic: %+v", got)
	}

	// The shared registry carries the cache series alongside the
	// service's own.
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		obs.MetricArtifactHits,
		obs.MetricArtifactMisses,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("registry exposition missing %q", want)
		}
	}
}

// TestArtifactsEndpointWithoutStore pins the uncached deployment shape:
// /artifacts answers 404, not 500 or an empty object masquerading as a
// cache.
func TestArtifactsEndpointWithoutStore(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(AdminHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/artifacts without a store: status %d", resp.StatusCode)
	}
}
