package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// AdminHandler builds the service's admin HTTP surface:
//
//	/metrics                      Prometheus text exposition of the obs registry
//	/healthz                      liveness: are pool workers running
//	/readyz                       readiness: is there queue headroom to accept scans
//	/jobs                         JSON list of retained jobs (oldest first)
//	/jobs/{id}                    JSON status of one job, live stage timeline included
//	/artifacts                    JSON stats of the shared artifact cache (404 when none configured)
//	/sessions                     JSON list of open sessions with flight-recorder state
//	/sessions/{id}/flightrecorder JSONL of the session's live flight-recorder ring;
//	                              ?dump=last serves the last automatic anomaly dump instead
//	/debug/pprof/                 runtime profiling (CPU, heap, goroutines, ...)
//
// The handler holds only the *Service; mount it wherever the deployment
// wants (ServeAdmin below binds it to its own listener).
func AdminHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Point-in-time gauges and the runtime sample are refreshed at
		// scrape time, so the exposition reflects the service as it is
		// now, not as it was at the last state change.
		s.SampleRuntime()
		reg := s.Registry()
		reg.Gauge(obs.MetricQueueDepth,
			"Accepted scans waiting for a worker.").Set(float64(s.QueueDepth()))
		reg.Gauge(obs.MetricQueueCapacity,
			"Configured scan queue bound.").Set(float64(s.QueueCapacity()))
		reg.Gauge(obs.MetricWorkersAlive,
			"Worker-pool goroutines currently running.").Set(float64(s.WorkersAlive()))
		reg.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		alive := s.WorkersAlive()
		m := s.Metrics()
		status := http.StatusOK
		if alive == 0 {
			status = http.StatusServiceUnavailable
		}
		shedRate := 0.0
		if total := m.Scans + m.Shed; total > 0 {
			shedRate = float64(m.Shed) / float64(total)
		}
		writeJSON(w, status, map[string]any{
			"ok":            alive > 0,
			"workers_alive": alive,
			"queue_depth":   s.QueueDepth(),
			"queue_cap":     s.QueueCapacity(),
			"shed_rate":     shedRate,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Ready means a Submit right now would be accepted: workers are
		// alive and the queue has headroom.
		depth, capacity := s.QueueDepth(), s.QueueCapacity()
		ready := s.WorkersAlive() > 0 && depth < capacity
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ready":       ready,
			"queue_depth": depth,
			"queue_cap":   capacity,
		})
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobStatus, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/jobs/")
		if id == "" || strings.Contains(id, "/") {
			http.NotFound(w, r)
			return
		}
		j, err := s.Job(id)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("/artifacts", func(w http.ResponseWriter, r *http.Request) {
		store := s.ArtifactStore()
		if store == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "no artifact store configured"})
			return
		}
		writeJSON(w, http.StatusOK, store.Stats())
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Sessions())
	})
	mux.HandleFunc("/sessions/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
		id, sub, found := strings.Cut(rest, "/")
		if !found || id == "" || sub != "flightrecorder" {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("dump") == "last" {
			// The frozen anomaly dump, JSON-wrapped with its trigger
			// metadata; 404 distinguishes "no anomaly yet" from an
			// unknown session.
			d, err := s.SessionLastDump(id)
			if err != nil {
				writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
				return
			}
			if d == nil {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"error": fmt.Sprintf("session %q has no flight-recorder dump", id)})
				return
			}
			writeJSON(w, http.StatusOK, d)
			return
		}
		recs, err := s.SessionFlightRecords(id)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = obs.WriteFlightRecords(w, recs)
	})
	obs.RegisterPprof(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Admin is a running admin HTTP server bound to its own listener.
type Admin struct {
	ln  net.Listener
	srv *http.Server
	// done is closed when the serve goroutine exits; serveErr carries
	// its terminal error (nil on the ErrServerClosed shutdown path) and
	// is published to Close through the close(done) happens-before edge.
	done     chan struct{}
	serveErr error
}

// ServeAdmin starts the admin surface on addr (e.g. "127.0.0.1:8077",
// or ":0" for an ephemeral port) and serves until Close. It returns as
// soon as the listener is bound, so Addr is immediately meaningful.
func ServeAdmin(s *Service, addr string) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: admin listen %s: %w", addr, err)
	}
	a := &Admin{ln: ln, srv: &http.Server{Handler: AdminHandler(s)}, done: make(chan struct{})}
	go func() {
		defer close(a.done)
		// ErrServerClosed after Close is the normal shutdown path; any
		// other serve error just ends the admin surface, never the
		// registration service itself — it surfaces on Close.
		if err := a.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.serveErr = fmt.Errorf("service: admin serve: %w", err)
		}
	}()
	return a, nil
}

// Addr returns the bound address ("127.0.0.1:43817").
func (a *Admin) Addr() string {
	return a.ln.Addr().String()
}

// Close stops the admin server, waits for the serve goroutine to
// exit, and reports any abnormal serve error it died with. The
// registration service is unaffected.
func (a *Admin) Close() error {
	err := a.srv.Close()
	<-a.done
	if a.serveErr != nil {
		return a.serveErr
	}
	return err
}
