package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// stageDeadline is a context whose deadline "expires" on demand — it
// pins deadline expiry to a pipeline stage instead of wall-clock time,
// so degradation tests behave the same on any machine.
type stageDeadline struct {
	done chan struct{}
	once sync.Once
}

func newStageDeadline() *stageDeadline {
	return &stageDeadline{done: make(chan struct{})}
}

func (c *stageDeadline) expire() { c.once.Do(func() { close(c.done) }) }

func (c *stageDeadline) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stageDeadline) Done() <-chan struct{}       { return c.done }
func (c *stageDeadline) Value(any) any               { return nil }

func (c *stageDeadline) Err() error {
	select {
	case <-c.done:
		return context.DeadlineExceeded
	default:
		return nil
	}
}

func TestServiceShedCounter(t *testing.T) {
	// Same setup as TestServiceQueueFull — worker stalled on the session
	// lock, queue full — but checks the load shed is *counted*: on the
	// typed snapshot, and on the Prometheus registry.
	svc := New(Options{Workers: 1, QueueDepth: 1})
	defer svc.Close()
	c := testCase(24, 7)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	ms := svc.sessions["or"]
	svc.mu.Unlock()
	ms.gate <- struct{}{} // stall the worker on the session gate

	j1, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), "or", c.Intraop); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	<-ms.gate // release the worker
	for _, j := range []*Job{j1, j2} {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Errorf("job failed: %v", err)
		}
	}

	m := svc.Metrics()
	if m.Shed != 1 {
		t.Errorf("Shed = %d, want 1", m.Shed)
	}
	if m.Scans != 2 {
		t.Errorf("Scans = %d, want 2 (shed submissions are not scans)", m.Scans)
	}
	if v := svc.Registry().Counter("brainsim_shed_total", "").Value(); v != 1 {
		t.Errorf("brainsim_shed_total = %v, want 1", v)
	}
	// A shed submission never got a job id: the next accepted job must
	// not skip a number.
	if j1.ID != "j000001" || j2.ID != "j000002" {
		t.Errorf("job ids = %q, %q, want j000001, j000002", j1.ID, j2.ID)
	}
}

func TestServiceMidDegradationCountsDegradedOnly(t *testing.T) {
	// A deadline that expires during the solve stage triggers the
	// degrade-to-rigid fallback. The scan must be counted under Degraded
	// alone — not double-counted as Canceled/Failed, which is what the
	// naive "ctx expired → canceled" accounting did.
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 8)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	ctx := newStageDeadline()
	j, err := svc.Submit(ctx, "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			for _, e := range j.Events() {
				if e.Stage == core.StageSolve {
					ctx.expire()
					return
				}
			}
			select {
			case <-j.Done():
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("degraded scan should still deliver: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not degraded; deadline missed the solve stage")
	}
	m := svc.Metrics()
	if m.Degraded != 1 || m.Canceled != 0 || m.Failed != 0 {
		t.Errorf("metrics = %+v, want Degraded=1 Canceled=0 Failed=0", m)
	}
	if v := svc.Registry().Counter("brainsim_scans_total", "",
		obs.Label{Key: "outcome", Value: "degraded"}).Value(); v != 1 {
		t.Errorf(`brainsim_scans_total{outcome="degraded"} = %v, want 1`, v)
	}
}

func TestServiceSolveNotConverged(t *testing.T) {
	// A solver starved of iterations delivers a (poor) result without
	// converging; the service must surface that as a distinct metric
	// rather than folding it into clean completions.
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 9)
	cfg := fastConfig()
	cfg.Solver.MaxIter = 1
	cfg.Solver.Tol = 1e-14
	if err := svc.Open(SessionSpec{ID: "or", Config: cfg, Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Register(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if res.SolveStats.Converged {
		t.Skip("solve converged in one iteration; cannot exercise the metric")
	}
	m := svc.Metrics()
	if m.SolveNotConverged != 1 {
		t.Errorf("SolveNotConverged = %d, want 1", m.SolveNotConverged)
	}
	if v := svc.Registry().Counter("brainsim_solver_nonconverged_total", "").Value(); v != 1 {
		t.Errorf("brainsim_solver_nonconverged_total = %v, want 1", v)
	}
}

func TestAggregatorSnapshotIndependence(t *testing.T) {
	// snapshot() must deep-copy: a held snapshot may not change as more
	// stages complete, and mutating it must not corrupt the aggregator.
	// Run with -race to also exercise the locking.
	var a aggregator
	a.init(obs.NewRegistry())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.StageDone(core.StageSolve, time.Duration(i+1)*time.Millisecond, nil)
			}
		}()
	}
	var snaps []Metrics
	for i := 0; i < 50; i++ {
		snaps = append(snaps, a.snapshot())
		if i%10 == 9 {
			// Yield so the writers make progress even on GOMAXPROCS=1.
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.snapshot().Stages[core.StageSolve].Count == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for i, s := range snaps {
		// Poison the snapshot; the aggregator must not notice.
		s.Stages[core.StageSolve] = StageMetrics{Count: -1}
		s.Stages["bogus"] = StageMetrics{}
		if i > 0 && snaps[i].Stages[core.StageSolve].Count < snaps[i-1].Stages[core.StageSolve].Count {
			t.Fatalf("snapshot %d went backwards", i)
		}
	}
	final := a.snapshot()
	sm := final.Stages[core.StageSolve]
	if sm.Count <= 0 {
		t.Errorf("final count = %d, want > 0 (snapshot mutation leaked in?)", sm.Count)
	}
	if _, ok := final.Stages["bogus"]; ok {
		t.Error("mutating a snapshot leaked a stage into the aggregator")
	}
	if sm.Max < sm.P99 || sm.P99 < sm.P50 {
		t.Errorf("quantiles disordered: p50=%v p99=%v max=%v", sm.P50, sm.P99, sm.Max)
	}
}

func TestAdminEndpoints(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 10)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(AdminHandler(svc))
	defer ts.Close()
	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE brainsim_stage_seconds histogram",
		`brainsim_stage_seconds_bucket{stage="biomechanical simulation",le="+Inf"} 1`,
		`brainsim_scans_total{outcome="completed"} 1`,
		"brainsim_assembly_imbalance_max",
		"brainsim_workers_alive 1",
		"brainsim_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The 0.0.4 default scrape must stay exemplar-free (exemplars are
	// illegal in that grammar and would fail the whole scrape).
	if strings.Contains(body, "# {") {
		t.Errorf("0.0.4 /metrics scrape carries exemplar syntax:\n%s", body)
	}

	// An OpenMetrics scrape carries the job-ID exemplars on the scan
	// latency buckets, plus the mandatory EOF trailer.
	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	omBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics /metrics content type %q", ct)
	}
	if !strings.Contains(string(omBody), `# {trace_id="`) {
		t.Errorf("OpenMetrics /metrics missing exemplar annotation:\n%s", omBody)
	}
	if !strings.HasSuffix(string(omBody), "# EOF\n") {
		t.Errorf("OpenMetrics /metrics missing # EOF trailer:\n%s", omBody)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d, body %s", code, body)
	}
	var health struct {
		OK           bool `json:"ok"`
		WorkersAlive int  `json:"workers_alive"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if !health.OK || health.WorkersAlive != 1 {
		t.Errorf("/healthz = %+v", health)
	}

	if code, body, _ = get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz: status %d, body %s", code, body)
	}

	code, body, _ = get("/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs: status %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("/jobs not JSON: %v", err)
	}
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("/jobs = %+v, want one entry %s", list, j.ID)
	}

	code, body, _ = get("/jobs/" + j.ID)
	if code != http.StatusOK {
		t.Fatalf("/jobs/%s: status %d", j.ID, code)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/jobs/%s not JSON: %v", j.ID, err)
	}
	if st.State != "done" || len(st.Stages) != len(core.Stages) {
		t.Errorf("/jobs/%s = %+v, want done with %d stages", j.ID, st, len(core.Stages))
	}
	solveSeen := false
	for _, s := range st.Stages {
		if !s.Done {
			t.Errorf("stage %q not done in finished job", s.Stage)
		}
		if s.Stage == core.StageSolve && s.Flops > 0 {
			solveSeen = true
		}
	}
	if !solveSeen {
		t.Error("solve stage carries no assembly flops on /jobs/{id}")
	}

	if code, _, _ = get("/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("/jobs/nope: status %d, want 404", code)
	}

	if code, body, _ = get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", code)
	}
	if code, _, _ = get("/debug/pprof/profile?seconds=1"); code != http.StatusOK {
		t.Errorf("/debug/pprof/profile: status %d, want 200", code)
	}
}

func TestJobStatusLifecycle(t *testing.T) {
	// Status must be callable at every point of the job's life; use the
	// session-lock stall to observe the queued→running transition.
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 11)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	ms := svc.sessions["or"]
	svc.mu.Unlock()
	ms.gate <- struct{}{} // stall the worker on the session gate
	j, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Status().State == "queued" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := j.Status(); st.State != "running" {
		t.Errorf("state = %q, want running", st.State)
	}
	<-ms.gate // release the worker
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != "done" || st.Error != "" || st.QueueWaitMS < 0 {
		t.Errorf("final status = %+v", st)
	}
	if got, err := svc.Job(j.ID); err != nil || got != j {
		t.Errorf("Job(%q) = %v, %v", j.ID, got, err)
	}
	if _, err := svc.Job("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job err = %v, want ErrUnknownJob", err)
	}
}
