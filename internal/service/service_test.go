package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/phantom"
)

// testCase generates a small neurosurgery case.
func testCase(n int, seed int64) *phantom.Case {
	p := phantom.DefaultParams(n)
	p.NoiseStd = 2
	p.ShiftMagnitude = 6
	p.Seed = seed
	return phantom.Generate(p)
}

// fastConfig shrinks optimizer budgets for test-sized volumes.
func fastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SkipRigid = true // phantom pairs share a frame
	cfg.Surface.MaxIter = 300
	cfg.Surface.Tol = 0.001
	cfg.Solver.Tol = 1e-6
	cfg.Ranks = 2
	return cfg
}

func TestServiceConcurrentSessions(t *testing.T) {
	// Two operating rooms, one worker each: both scans go through the
	// pool and each job records the full per-stage event timeline.
	svc := New(Options{Workers: 2})
	defer svc.Close()

	cases := []*phantom.Case{testCase(24, 1), testCase(24, 2)}
	ids := []string{"or-1", "or-2"}
	for i, id := range ids {
		if err := svc.Open(SessionSpec{ID: id, Config: fastConfig(), Preop: cases[i].Preop, PreopLabels: cases[i].PreopLabels}); err != nil {
			t.Fatal(err)
		}
	}

	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		j, err := svc.Submit(context.Background(), id, cases[i].Intraop)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("session %s: %v", ids[i], err)
		}
		if res.Degraded {
			t.Errorf("session %s: unexpected degraded result", ids[i])
		}
		// Per-stage observer events: every stage started, finished, no
		// errors, and the solve stage carries an assembly counters
		// snapshot.
		events := j.Events()
		if len(events) != len(core.Stages) {
			t.Fatalf("session %s: %d stage events, want %d:\n%s",
				ids[i], len(events), len(core.Stages), j.Timeline())
		}
		countersSeen := false
		for k, e := range events {
			if e.Stage != core.Stages[k] {
				t.Errorf("session %s event %d: stage %q, want %q", ids[i], k, e.Stage, core.Stages[k])
			}
			if !e.Done || e.Err != nil {
				t.Errorf("session %s event %d (%s): done=%v err=%v", ids[i], k, e.Stage, e.Done, e.Err)
			}
			if e.HasCounters && e.Counters.TotalFlops > 0 {
				countersSeen = true
			}
		}
		if !countersSeen {
			t.Errorf("session %s: no counters snapshot recorded", ids[i])
		}
	}

	m := svc.Metrics()
	if m.Scans != 2 || m.Failed != 0 || m.Degraded != 0 {
		t.Errorf("metrics = %+v, want 2 clean scans", m)
	}
	for _, stage := range core.Stages {
		sm := m.Stages[stage]
		if sm.Count != 2 || sm.Errors != 0 {
			t.Errorf("stage %q metrics = %+v, want Count=2 Errors=0", stage, sm)
		}
		if sm.Max < sm.Mean() {
			t.Errorf("stage %q: max %v < mean %v", stage, sm.Max, sm.Mean())
		}
	}
	if m.AssemblyFlops <= 0 {
		t.Error("no assembly flops aggregated")
	}
}

func TestServiceSerializesScansOfOneSession(t *testing.T) {
	// Two scans of the same surgery: the second must see the refreshed
	// statistical model of the first, which requires serialization.
	svc := New(Options{Workers: 2})
	defer svc.Close()
	c := testCase(24, 3)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	j1, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Session("or")
	if err != nil {
		t.Fatal(err)
	}
	if sess.ScanCount() != 2 {
		t.Errorf("ScanCount = %d, want 2", sess.ScanCount())
	}
	if sess.PrototypeCount() == 0 {
		t.Error("statistical model not built")
	}
}

func TestServiceCancelledSubmission(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 4)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j, err := svc.Submit(ctx, "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	m := svc.Metrics()
	if m.Failed != 1 || m.Canceled != 1 {
		t.Errorf("metrics = %+v, want Failed=1 Canceled=1", m)
	}
}

func TestServiceScanTimeout(t *testing.T) {
	// A 1ns service-imposed budget has always expired by the first
	// stage check: the scan fails before the degradation point and is
	// counted as canceled.
	svc := New(Options{Workers: 1, ScanTimeout: time.Nanosecond})
	defer svc.Close()
	c := testCase(24, 5)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := j.Wait(context.Background())
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", werr)
	}
	if m := svc.Metrics(); m.Canceled != 1 {
		t.Errorf("metrics = %+v, want Canceled=1", m)
	}
}

func TestServiceSessionLifecycleErrors(t *testing.T) {
	svc := New(Options{Workers: 1})
	c := testCase(24, 6)

	badCfg := fastConfig()
	badCfg.KNN = 0
	if err := svc.Open(SessionSpec{ID: "bad", Config: badCfg, Preop: c.Preop, PreopLabels: c.PreopLabels}); err == nil {
		t.Error("invalid config accepted by Open")
	}

	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); !errors.Is(err, ErrDuplicateSession) {
		t.Errorf("duplicate open err = %v, want ErrDuplicateSession", err)
	}
	if _, err := svc.Submit(context.Background(), "ghost", c.Intraop); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session err = %v, want ErrUnknownSession", err)
	}
	if err := svc.CloseSession("or"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), "or", c.Intraop); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("closed session err = %v, want ErrUnknownSession", err)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := svc.Open(SessionSpec{ID: "late", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); !errors.Is(err, ErrClosed) {
		t.Errorf("open after close err = %v, want ErrClosed", err)
	}
}

func TestServiceQueueFull(t *testing.T) {
	// One worker, queue depth one. Block the worker by holding the
	// session lock, let one job occupy the queue, and the next submit
	// must shed load instead of blocking the scanner.
	svc := New(Options{Workers: 1, QueueDepth: 1})
	defer svc.Close()
	c := testCase(24, 7)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	ms := svc.sessions["or"]
	svc.mu.Unlock()
	ms.gate <- struct{}{} // stall the worker inside runJob

	j1, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued j1 and is blocked on the
	// session lock, so the queue slot is free again.
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), "or", c.Intraop); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	<-ms.gate // release the worker
	var wg sync.WaitGroup
	for _, j := range []*Job{j1, j2} {
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			if _, err := j.Wait(context.Background()); err != nil {
				t.Errorf("job failed: %v", err)
			}
		}(j)
	}
	wg.Wait()
	if w := j1.QueueWait(); w < 0 {
		t.Errorf("negative queue wait %v", w)
	}
}
