package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestServiceFlightDumpOnDegraded induces a mid-solve degradation and
// checks the session's flight recorder is frozen into a retrievable
// dump whose records carry the anomalous job's identity — the black box
// a surgeon's post-incident review reads.
func TestServiceFlightDumpOnDegraded(t *testing.T) {
	dumpDir := t.TempDir()
	svc := New(Options{Workers: 1, FlightDumpDir: dumpDir})
	defer svc.Close()
	c := testCase(24, 8)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	ctx := newStageDeadline()
	j, err := svc.Submit(ctx, "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			for _, e := range j.Events() {
				if e.Stage == core.StageSolve {
					ctx.expire()
					return
				}
			}
			select {
			case <-j.Done():
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("result not degraded; deadline missed the solve stage")
	}

	d, err := svc.SessionLastDump("or")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("degraded job produced no flight dump")
	}
	if d.Trigger != "degraded" || d.SessionID != "or" || d.JobID != j.ID {
		t.Fatalf("dump = trigger %q session %q job %q, want degraded/or/%s",
			d.Trigger, d.SessionID, d.JobID, j.ID)
	}
	if len(d.Records) == 0 {
		t.Fatal("dump holds no records")
	}
	// Every record stamped with a job id must name the anomalous job,
	// and at least one must: the dump has to be joinable to the job.
	matched := 0
	for _, r := range d.Records {
		if r.Job != "" {
			if r.Job != j.ID {
				t.Errorf("record %q carries job %q, want %s", r.Name, r.Job, j.ID)
			}
			matched++
		}
		if r.Session != "" && r.Session != "or" {
			t.Errorf("record %q carries session %q, want or", r.Name, r.Session)
		}
	}
	if matched == 0 {
		t.Error("no dump record is stamped with the job id")
	}
	// The event that fired the trigger is in the ring.
	foundDegraded := false
	for _, r := range d.Records {
		if r.Kind == "event" && r.Name == obs.EventJobDegraded {
			foundDegraded = true
		}
	}
	if !foundDegraded {
		t.Errorf("dump missing the %s event", obs.EventJobDegraded)
	}

	// The same dump also landed on disk as JSONL.
	path := filepath.Join(dumpDir, "or-"+j.ID+".jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump file: %v", err)
	}
	defer f.Close()
	recs, err := obs.ReadFlightRecords(f)
	if err != nil {
		t.Fatalf("dump file decode: %v", err)
	}
	if len(recs) != len(d.Records) {
		t.Errorf("dump file has %d records, in-memory dump %d", len(recs), len(d.Records))
	}

	if v := svc.Registry().Counter(obs.MetricFlightDumps, "",
		obs.Label{Key: "trigger", Value: "degraded"}).Value(); v != 1 {
		t.Errorf(`%s{trigger="degraded"} = %v, want 1`, obs.MetricFlightDumps, v)
	}
}

func TestServiceFlightDumpOnFallback(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 12)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	// An update before any baseline falls back to a full registration.
	if _, err := svc.Update(context.Background(), "or", c.Intraop); err != nil {
		t.Fatal(err)
	}
	d, err := svc.SessionLastDump("or")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Trigger != "fallback" {
		t.Fatalf("dump = %+v, want trigger fallback", d)
	}
	found := false
	for _, r := range d.Records {
		if r.Kind == "event" && r.Name == obs.EventJobFallback {
			found = true
		}
	}
	if !found {
		t.Errorf("dump missing the %s event", obs.EventJobFallback)
	}
}

func TestServiceFlightDumpOnNonConverged(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 9)
	cfg := fastConfig()
	cfg.Solver.MaxIter = 1
	cfg.Solver.Tol = 1e-14
	if err := svc.Open(SessionSpec{ID: "or", Config: cfg, Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Register(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if res.SolveStats.Converged {
		t.Skip("solve converged in one iteration; cannot exercise the trigger")
	}
	d, err := svc.SessionLastDump("or")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Trigger != "nonconverged" {
		t.Fatalf("dump = %+v, want trigger nonconverged", d)
	}
	// The solver's own convergence event made it into the black box.
	found := false
	for _, r := range d.Records {
		if r.Kind == "event" && r.Name == obs.EventSolverSolve && r.Attrs["converged"] == false {
			found = true
		}
	}
	if !found {
		t.Errorf("dump missing a non-converged %s event", obs.EventSolverSolve)
	}
}

func TestServiceFlightDumpOnShed(t *testing.T) {
	svc := New(Options{Workers: 1, QueueDepth: 1})
	defer svc.Close()
	c := testCase(24, 7)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	ms := svc.sessions["or"]
	svc.mu.Unlock()
	ms.gate <- struct{}{} // stall the worker on the session gate

	j1, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.queue) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := svc.Submit(context.Background(), "or", c.Intraop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), "or", c.Intraop); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// The shed fired its dump at submit time, before the queue drains.
	d, err := svc.SessionLastDump("or")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Trigger != "shed" || d.JobID != "" {
		t.Fatalf("dump = %+v, want trigger shed with no job id", d)
	}
	<-ms.gate
	for _, j := range []*Job{j1, j2} {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Errorf("job failed: %v", err)
		}
	}
}

// TestSessionsAdminEndpoints exercises the /sessions admin surface:
// listing, the live flight-recorder ring as JSONL, the last-dump JSON
// form, and the 404 distinctions.
func TestSessionsAdminEndpoints(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	c := testCase(24, 5)
	if err := svc.Open(SessionSpec{ID: "or-a", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(context.Background(), "or-a", c.Intraop); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(AdminHandler(svc))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/sessions")
	if code != http.StatusOK {
		t.Fatalf("/sessions = %d", code)
	}
	var sessions []SessionStatus
	if err := json.Unmarshal(body, &sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].ID != "or-a" {
		t.Fatalf("sessions = %+v", sessions)
	}
	if sessions[0].Scans != 1 || !sessions[0].HasBaseline {
		t.Errorf("session status = %+v, want 1 scan with baseline", sessions[0])
	}
	if sessions[0].FlightRecords == 0 || sessions[0].FlightTotal == 0 {
		t.Errorf("session status shows an empty flight recorder after a scan: %+v", sessions[0])
	}

	code, body = get("/sessions/or-a/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/sessions/or-a/flightrecorder = %d", code)
	}
	recs, err := obs.ReadFlightRecords(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("flight JSONL decode: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("live ring served empty after a scan")
	}

	// A clean scan leaves no anomaly dump: distinct 404.
	if code, _ := get("/sessions/or-a/flightrecorder?dump=last"); code != http.StatusNotFound {
		t.Errorf("dump=last on a clean session = %d, want 404", code)
	}
	// Unknown session: 404 on both forms.
	if code, _ := get("/sessions/nope/flightrecorder"); code != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", code)
	}
	if code, _ := get("/sessions/nope/flightrecorder?dump=last"); code != http.StatusNotFound {
		t.Errorf("unknown session dump = %d, want 404", code)
	}

	// Induce a fallback; the dump becomes retrievable.
	if _, err := svc.Update(context.Background(), "or-a", c.Intraop); err != nil {
		t.Fatal(err)
	}
	// or-a has a baseline now, so force the anomaly on a fresh session.
	if err := svc.Open(SessionSpec{ID: "or-b", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Update(context.Background(), "or-b", c.Intraop); err != nil {
		t.Fatal(err)
	}
	code, body = get("/sessions/or-b/flightrecorder?dump=last")
	if code != http.StatusOK {
		t.Fatalf("dump=last after fallback = %d", code)
	}
	var dump FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Trigger != "fallback" || dump.SessionID != "or-b" || len(dump.Records) == 0 {
		t.Fatalf("dump = trigger %q session %q records %d", dump.Trigger, dump.SessionID, len(dump.Records))
	}
}

// TestJobRetentionEviction bounds the admin job index: with retention 2
// a third scan evicts the oldest finished job and counts the eviction.
func TestJobRetentionEviction(t *testing.T) {
	svc := New(Options{Workers: 1, JobRetention: 2})
	defer svc.Close()
	c := testCase(24, 6)
	if err := svc.Open(SessionSpec{ID: "or", Config: fastConfig(), Preop: c.Preop, PreopLabels: c.PreopLabels}); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(context.Background(), "or", c.Intraop)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	jobs := svc.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(jobs))
	}
	if _, err := svc.Job(ids[0]); err == nil {
		t.Errorf("oldest job %s still addressable after eviction", ids[0])
	}
	for _, id := range ids[1:] {
		if _, err := svc.Job(id); err != nil {
			t.Errorf("job %s evicted, want retained: %v", id, err)
		}
	}
	if v := svc.Registry().Counter(obs.MetricJobsEvicted, "").Value(); v != 1 {
		t.Errorf("%s = %v, want 1", obs.MetricJobsEvicted, v)
	}
}

// TestJobStageEventBound checks the per-job stage history cannot grow
// without bound and that drops are counted.
func TestJobStageEventBound(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	j := &Job{ID: "j999999", done: make(chan struct{})}
	r := &jobRecorder{j: j, agg: &svc.agg}
	const n = maxJobStageEvents + 40
	for i := 0; i < n; i++ {
		r.StageStart(core.StageSolve)
	}
	if got := len(j.Events()); got != maxJobStageEvents {
		t.Fatalf("events = %d, want the %d bound", got, maxJobStageEvents)
	}
	if v := svc.Registry().Counter(obs.MetricStageEventsDropped, "").Value(); v != 40 {
		t.Errorf("%s = %v, want 40", obs.MetricStageEventsDropped, v)
	}
}
