package surface

import (
	"context"
	"errors"
	"testing"

	"repro/internal/edt"
	"repro/internal/volume"
)

func TestEvolveContextCancelled(t *testing.T) {
	n := 32
	src := brainSurface(t, sphereLabels(n, 11))
	phi := edt.SignedOfSet(sphereLabels(n, 8),
		func(l volume.Label) bool { return l == volume.LabelBrain }, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvolveContext(ctx, src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvolveContextBackgroundMatchesEvolve(t *testing.T) {
	// The ctx-aware entry point must not change the evolution result.
	n := 32
	src := brainSurface(t, sphereLabels(n, 11))
	phi := edt.SignedOfSet(sphereLabels(n, 8),
		func(l volume.Label) bool { return l == volume.LabelBrain }, 0)
	a, err := Evolve(src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvolveContext(context.Background(), src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.MeanDisp != b.MeanDisp {
		t.Errorf("Evolve (%d iters, %v) and EvolveContext (%d iters, %v) diverge",
			a.Iterations, a.MeanDisp, b.Iterations, b.MeanDisp)
	}
}
