package surface

import (
	"math"
	"testing"

	"repro/internal/edt"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/volume"
)

// sphereLabels builds a label volume with a sphere of the given radius
// (voxels) labeled brain, centered in an n^3 grid.
func sphereLabels(n int, radius float64) *volume.Labels {
	g := volume.NewGrid(n, n, n, 1)
	l := volume.NewLabels(g)
	c := g.Center()
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if g.World(i, j, k).Dist(c) <= radius {
					l.Set(i, j, k, volume.LabelBrain)
				}
			}
		}
	}
	return l
}

// brainSurface meshes a label volume and extracts the brain surface.
func brainSurface(t *testing.T, l *volume.Labels) *mesh.TriMesh {
	t.Helper()
	m, err := mesh.FromLabels(l, mesh.Options{CellSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.ExtractSurface(func(lab volume.Label) bool { return lab == volume.LabelBrain })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvolveShrinksSphereToSmallerTarget(t *testing.T) {
	// Source: sphere of radius 11. Target: concentric sphere of radius
	// 8. The active surface must move each vertex ~3mm inward.
	n := 32
	src := brainSurface(t, sphereLabels(n, 11))
	target := sphereLabels(n, 8)
	phi := edt.Signed(target, volume.LabelBrain, 0)
	res, err := Evolve(src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Logf("did not fully converge in %d iterations (mean %v)", res.Iterations, res.MeanDisp)
	}
	// Final vertices should sit near the radius-8 sphere.
	c := volume.NewGrid(n, n, n, 1).Center()
	maxErr := 0.0
	for _, v := range res.Final.Verts {
		if e := math.Abs(v.Dist(c) - 8); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1.6 {
		t.Errorf("max radial error %v mm, want <= 1.6", maxErr)
	}
	if res.MeanDisp < 2 || res.MeanDisp > 4.5 {
		t.Errorf("mean displacement %v, want ~3", res.MeanDisp)
	}
	if res.MaxDisp < res.MeanDisp {
		t.Error("max < mean displacement")
	}
}

func TestEvolveGrowsSphereToLargerTarget(t *testing.T) {
	n := 32
	src := brainSurface(t, sphereLabels(n, 8))
	target := sphereLabels(n, 11)
	phi := edt.Signed(target, volume.LabelBrain, 0)
	res, err := Evolve(src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := volume.NewGrid(n, n, n, 1).Center()
	maxErr := 0.0
	for _, v := range res.Final.Verts {
		if e := math.Abs(v.Dist(c) - 11); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1.6 {
		t.Errorf("max radial error %v mm, want <= 1.6", maxErr)
	}
}

func TestEvolveStationaryOnMatchedTarget(t *testing.T) {
	// Source and target identical: the blocky marching-tetrahedra
	// surface relaxes onto the smooth zero level set (sub-voxel
	// staircase correction) but must not drift beyond that.
	n := 24
	labels := sphereLabels(n, 8)
	src := brainSurface(t, labels)
	phi := edt.Signed(labels, volume.LabelBrain, 0)
	opts := DefaultOptions()
	res, err := Evolve(src, SignedDistanceForce{Phi: phi}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDisp > 2.0 {
		t.Errorf("matched target moved surface by %v mm on average", res.MeanDisp)
	}
	// Final surface sits on the radius-8 sphere.
	c := volume.NewGrid(n, n, n, 1).Center()
	sumErr := 0.0
	for _, v := range res.Final.Verts {
		sumErr += math.Abs(v.Dist(c) - 8)
	}
	if mean := sumErr / float64(len(res.Final.Verts)); mean > 1.0 {
		t.Errorf("mean radial error %v mm after matched-target evolution", mean)
	}
}

func TestEvolveInputUnmodified(t *testing.T) {
	n := 24
	src := brainSurface(t, sphereLabels(n, 8))
	orig := append([]geom.Vec3(nil), src.Verts...)
	phi := edt.Signed(sphereLabels(n, 10), volume.LabelBrain, 0)
	if _, err := Evolve(src, SignedDistanceForce{Phi: phi}, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for v := range src.Verts {
		if src.Verts[v] != orig[v] {
			t.Fatal("Evolve modified its input surface")
		}
	}
}

func TestEvolveErrors(t *testing.T) {
	if _, err := Evolve(nil, SignedDistanceForce{}, DefaultOptions()); err == nil {
		t.Error("nil surface accepted")
	}
	empty := &mesh.TriMesh{}
	if _, err := Evolve(empty, SignedDistanceForce{}, DefaultOptions()); err == nil {
		t.Error("empty surface accepted")
	}
	n := 24
	src := brainSurface(t, sphereLabels(n, 8))
	if _, err := Evolve(src, nil, DefaultOptions()); err == nil {
		t.Error("nil force accepted")
	}
}

func TestSmoothingRegularizesNoisyForce(t *testing.T) {
	// A rough (checkerboard) force field without smoothing produces a
	// rougher surface than with smoothing. Roughness measured as mean
	// distance of each vertex from its neighbor centroid.
	n := 24
	src := brainSurface(t, sphereLabels(n, 8))
	rough := roughForce{}
	opts := DefaultOptions()
	opts.MaxIter = 30
	opts.Tol = 0 // run all iterations
	opts.Smoothing = 0
	resNoSmooth, err := Evolve(src, rough, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Smoothing = 0.5
	resSmooth, err := Evolve(src, rough, opts)
	if err != nil {
		t.Fatal(err)
	}
	if roughness(resSmooth.Final) >= roughness(resNoSmooth.Final) {
		t.Errorf("smoothing did not reduce roughness: %v vs %v",
			roughness(resSmooth.Final), roughness(resNoSmooth.Final))
	}
}

// roughForce pushes alternate vertices in and out.
type roughForce struct{}

func (roughForce) At(p, normal geom.Vec3) geom.Vec3 {
	s := math.Sin(7*p.X) * math.Cos(9*p.Y) * math.Sin(5*p.Z)
	return normal.Scale(2 * s)
}

func roughness(s *mesh.TriMesh) float64 {
	nb := s.VertexNeighbors()
	sum := 0.0
	for v := range s.Verts {
		if len(nb[v]) == 0 {
			continue
		}
		var c geom.Vec3
		for _, u := range nb[v] {
			c = c.Add(s.Verts[u])
		}
		c = c.Scale(1 / float64(len(nb[v])))
		sum += s.Verts[v].Dist(c)
	}
	return sum / float64(len(s.Verts))
}

func TestEdgeForceStopsAtEdges(t *testing.T) {
	// Image with a strong edge at x=16: balloon force should be much
	// weaker on the edge than in flat regions.
	g := volume.NewGrid(32, 8, 8, 1)
	img := volume.NewScalar(g)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 32; i++ {
				if i >= 16 {
					img.Set(i, j, k, 100)
				}
			}
		}
	}
	f := EdgeForce{Image: img, Pressure: 1, EdgeScale: 5}
	n := geom.V(1, 0, 0)
	flat := f.At(geom.V(5, 4, 4), n).Norm()
	edge := f.At(geom.V(15.5, 4, 4), n).Norm()
	if edge >= 0.2*flat {
		t.Errorf("edge force %v not much smaller than flat force %v", edge, flat)
	}
}

func TestEdgeForcePrior(t *testing.T) {
	g := volume.NewGrid(16, 8, 8, 1)
	img := volume.NewScalar(g)
	img.Fill(50)
	// With the prior level matching the local intensity, the stopping
	// term suppresses the force; far from the prior level it does not.
	fMatch := EdgeForce{Image: img, Pressure: 1, EdgeScale: 5, PriorLevel: 50, PriorWindow: 10}
	fOff := EdgeForce{Image: img, Pressure: 1, EdgeScale: 5, PriorLevel: 200, PriorWindow: 10}
	n := geom.V(1, 0, 0)
	p := geom.V(8, 4, 4)
	if fMatch.At(p, n).Norm() >= fOff.At(p, n).Norm() {
		t.Error("prior did not modulate force")
	}
}

func TestBoundaryConditionsMapToNodes(t *testing.T) {
	n := 24
	src := brainSurface(t, sphereLabels(n, 9))
	phi := edt.Signed(sphereLabels(n, 7), volume.LabelBrain, 0)
	res, err := Evolve(src, SignedDistanceForce{Phi: phi}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bc := res.BoundaryConditions()
	if len(bc) != src.NumVerts() {
		t.Errorf("bc count %d != vert count %d", len(bc), src.NumVerts())
	}
	for v, node := range src.NodeID {
		d, ok := bc[node]
		if !ok {
			t.Fatalf("node %d missing from boundary conditions", node)
		}
		if d != res.Displacements[v] {
			t.Fatalf("bc for node %d mismatches displacement", node)
		}
	}
}
