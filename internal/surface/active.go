// Package surface implements the paper's active surface algorithm
// (Ferrant, Cuisenaire & Macq, SPIE Medical Imaging 1999): an elastic
// membrane model of the brain surface is iteratively deformed by forces
// derived from the target volumetric data until it matches the brain
// surface in the second scan. The resulting per-vertex displacements
// establish the surface correspondences that become Dirichlet boundary
// conditions of the volumetric biomechanical model.
package surface

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/volume"
)

// ForceField produces the external (data-derived) force acting on a
// surface point with the given outward normal.
type ForceField interface {
	At(p, normal geom.Vec3) geom.Vec3
}

// SignedDistanceForce drives the surface toward the zero level set of a
// signed distance volume (negative inside the target object). The force
// is -phi(p) * grad(phi)/|grad(phi)|: straight down the distance field
// toward the target boundary, vanishing exactly on it — the "decreasing
// function of the data gradients ... minimized at the edges of objects"
// of the paper, realized on a distance field of the intraoperative
// segmentation. Walking the field gradient rather than the surface
// normal keeps the evolution stable even where the discrete surface
// folds momentarily (a flipped normal would otherwise turn the
// attraction into an unbounded repulsion).
type SignedDistanceForce struct {
	Phi *volume.Scalar
	// Gain scales the force (per mm of distance).
	Gain float64
}

// At implements ForceField.
func (f SignedDistanceForce) At(p, normal geom.Vec3) geom.Vec3 {
	gain := f.Gain
	if gain == 0 {
		gain = 1
	}
	phi := f.Phi.SampleWorld(p)
	dir := f.Phi.GradientWorld(p).Normalized()
	if dir.NormSq() == 0 {
		// Flat spot in the distance field (e.g. deep inside): fall back
		// to the surface normal.
		dir = normal
	}
	return dir.Scale(-gain * phi)
}

// EdgeForce is the intensity-based variant: a balloon force along the
// normal modulated by an edge-stopping function g = 1/(1 + |grad I|^2 /
// k^2), optionally gated by prior knowledge of the expected gray level
// at the boundary (the paper's robustness refinement). The surface
// inflates (or deflates, negative Pressure) until it hits strong edges
// whose intensity matches the prior.
type EdgeForce struct {
	Image *volume.Scalar
	// Pressure is the balloon force magnitude and sign.
	Pressure float64
	// EdgeScale is k in the edge-stopping function.
	EdgeScale float64
	// PriorLevel and PriorWindow describe the expected boundary gray
	// level; a window <= 0 disables the prior.
	PriorLevel, PriorWindow float64
}

// At implements ForceField.
func (f EdgeForce) At(p, normal geom.Vec3) geom.Vec3 {
	grad := f.Image.GradientWorld(p)
	k := f.EdgeScale
	if k <= 0 {
		k = 1
	}
	g := 1.0 / (1.0 + grad.NormSq()/(k*k))
	if f.PriorWindow > 0 {
		// Sharpen stopping where the local intensity matches the
		// expected boundary level.
		d := (f.Image.SampleWorld(p) - f.PriorLevel) / f.PriorWindow
		g *= 1 - math.Exp(-d*d)
	}
	return normal.Scale(f.Pressure * g)
}

// Options controls the evolution.
type Options struct {
	// Step is the integration step (fraction of the force applied per
	// iteration).
	Step float64
	// Smoothing is the elastic membrane (Laplacian) weight.
	Smoothing float64
	// MaxIter bounds the number of iterations.
	MaxIter int
	// Tol stops the evolution when the mean per-vertex update falls
	// below this value (mm).
	Tol float64
	// MaxStep caps the per-vertex displacement per iteration (mm),
	// keeping the evolution stable on steep force fields.
	MaxStep float64
}

// DefaultOptions returns stable defaults for millimetre-scale volumes.
func DefaultOptions() Options {
	return Options{
		Step:      0.4,
		Smoothing: 0.3,
		MaxIter:   200,
		Tol:       0.005,
		MaxStep:   1.5,
	}
}

// Result reports the converged surface and its displacement field.
type Result struct {
	// Final is the deformed surface (same topology as the input).
	Final *mesh.TriMesh
	// Displacements maps each vertex to (final - initial) position.
	Displacements []geom.Vec3
	Iterations    int
	Converged     bool
	// MeanDisp and MaxDisp summarize the recovered surface motion —
	// the quantities color-coded in the paper's Figure 5.
	MeanDisp, MaxDisp float64
}

// Evolve runs the evolution with a background context; see
// EvolveContext.
func Evolve(s *mesh.TriMesh, force ForceField, opts Options) (*Result, error) {
	return EvolveContext(context.Background(), s, force, opts)
}

// EvolveContext iteratively deforms surface s under the given force
// field. The input surface is not modified. The context is checked once
// per iteration; a cancelled or deadline-expired context aborts the
// evolution and returns ctx.Err().
func EvolveContext(ctx context.Context, s *mesh.TriMesh, force ForceField, opts Options) (*Result, error) {
	if s == nil || s.NumVerts() == 0 {
		return nil, fmt.Errorf("surface: empty surface")
	}
	if force == nil {
		return nil, fmt.Errorf("surface: nil force field")
	}
	if opts.Step <= 0 {
		opts.Step = 0.4
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.MaxStep <= 0 {
		opts.MaxStep = 1.5
	}
	// Each evolution (the pipeline runs two per scan: discretization
	// relaxation, then the intraoperative deformation) is one span with
	// the convergence outcome attached.
	_, span := obs.StartSpan(ctx, obs.SpanSurfaceEvolve)
	var everr error
	defer func() { span.End(everr) }()
	span.SetAttr("vertices", s.NumVerts())
	cur := s.Clone()
	initial := append([]geom.Vec3(nil), s.Verts...)
	neighbors := cur.VertexNeighbors()
	updates := make([]geom.Vec3, len(cur.Verts))
	// Per-vertex oscillation damping: a vertex whose update reverses
	// direction (a limit cycle across a staircase kink of the distance
	// field) has its effective step shrunk until it settles.
	prev := make([]geom.Vec3, len(cur.Verts))
	damp := make([]float64, len(cur.Verts))
	for i := range damp {
		damp[i] = 1
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			span.SetAttr("iterations", res.Iterations)
			everr = err
			return nil, err
		}
		res.Iterations = iter + 1
		normals := cur.VertexNormals()
		meanUpdate := 0.0
		for v := range cur.Verts {
			p := cur.Verts[v]
			// External data force.
			f := force.At(p, normals[v])
			// Internal elastic membrane force: pull toward the neighbor
			// centroid, projected onto the vertex normal (mean-curvature
			// flow). The unprojected Laplacian would also slide vertices
			// tangentially along the surface — motion that is not tissue
			// displacement and would contaminate the boundary conditions
			// handed to the biomechanical model.
			if opts.Smoothing > 0 && len(neighbors[v]) > 0 {
				var c geom.Vec3
				for _, nb := range neighbors[v] {
					c = c.Add(cur.Verts[nb])
				}
				c = c.Scale(1 / float64(len(neighbors[v])))
				lap := c.Sub(p)
				n := normals[v]
				lapN := n.Scale(lap.Dot(n))
				f = f.Add(lapN.Scale(opts.Smoothing / opts.Step))
			}
			d := f.Scale(opts.Step * damp[v])
			if n := d.Norm(); n > opts.MaxStep {
				d = d.Scale(opts.MaxStep / n)
			}
			if d.Dot(prev[v]) < 0 {
				damp[v] *= 0.7
			} else if damp[v] < 1 {
				damp[v] = minF(1, damp[v]*1.05)
			}
			prev[v] = d
			updates[v] = d
			meanUpdate += d.Norm()
		}
		for v := range cur.Verts {
			cur.Verts[v] = cur.Verts[v].Add(updates[v])
		}
		meanUpdate /= float64(len(cur.Verts))
		if opts.Tol > 0 && meanUpdate < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Final = cur
	res.Displacements = make([]geom.Vec3, len(cur.Verts))
	sum := 0.0
	for v := range cur.Verts {
		d := cur.Verts[v].Sub(initial[v])
		res.Displacements[v] = d
		n := d.Norm()
		sum += n
		if n > res.MaxDisp {
			res.MaxDisp = n
		}
	}
	res.MeanDisp = sum / float64(len(cur.Verts))
	span.SetAttr("iterations", res.Iterations)
	span.SetAttr("converged", res.Converged)
	span.SetAttr("mean_disp_mm", res.MeanDisp)
	span.SetAttr("max_disp_mm", res.MaxDisp)
	return res, nil
}

// BoundaryConditions converts the surface displacement field into the
// per-mesh-node Dirichlet conditions of the volumetric FEM: node id ->
// displacement vector.
func (r *Result) BoundaryConditions() map[int32]geom.Vec3 {
	bc := make(map[int32]geom.Vec3, len(r.Displacements))
	for v, d := range r.Displacements {
		bc[r.Final.NodeID[v]] = d
	}
	return bc
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
