package numeric

import (
	"math"
	"testing"
)

func TestEqAbs(t *testing.T) {
	if !EqAbs(1.0, 1.0+1e-12, 1e-9) {
		t.Error("EqAbs: nearby values not equal")
	}
	if EqAbs(1.0, 1.1, 1e-9) {
		t.Error("EqAbs: distant values reported equal")
	}
	if !EqAbs(-3, -3, 0) {
		t.Error("EqAbs: identical values must be equal at tol 0")
	}
}

func TestEqRel(t *testing.T) {
	// Near zero the floor makes the test absolute.
	if !EqRel(0, 1e-12, 1e-9) {
		t.Error("EqRel: tiny values near zero should compare equal")
	}
	// At large magnitude the test is relative.
	if !EqRel(1e12, 1e12*(1+1e-10), 1e-9) {
		t.Error("EqRel: relatively close large values should compare equal")
	}
	if EqRel(1e12, 1e12+1e6, 1e-9) {
		t.Error("EqRel: relatively distant large values reported equal")
	}
}

func TestZeroNonZero(t *testing.T) {
	if !Zero(0) || Zero(math.SmallestNonzeroFloat64) {
		t.Error("Zero must be an exact test")
	}
	if NonZero(0) || !NonZero(-0.5) {
		t.Error("NonZero must be an exact test")
	}
	if !Zero(math.Copysign(0, -1)) {
		t.Error("Zero must accept negative zero")
	}
}
