// Package numeric holds the shared floating-point comparison helpers
// for the numerical kernels (FEM assembly, GMRES, the sparse and EDT
// code). The simlint `floateq` analyzer forbids raw ==/!= between
// floats inside those packages: an equality that is really a tolerance
// test must say which tolerance, and an equality that is really an
// exact-zero guard (a division guard, a sparsity test) must say so by
// name. This package is the one place raw float equality is written.
package numeric

import "math"

// EqAbs reports whether a and b differ by at most tol in absolute
// terms. Use it when the scale of the quantity is known (voxel
// spacings, residual norms already normalized by beta0).
func EqAbs(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// EqRel reports whether a and b are equal within a mixed
// absolute/relative tolerance: |a-b| <= tol*max(1, |a|, |b|). The
// max(1, ...) floor makes the test behave absolutely near zero and
// relatively for large magnitudes — the right default for stiffness
// entries and element volumes whose scale varies with mesh resolution.
func EqRel(a, b, tol float64) bool {
	m := 1.0
	if aa := math.Abs(a); aa > m {
		m = aa
	}
	if ab := math.Abs(b); ab > m {
		m = ab
	}
	return math.Abs(a-b) <= tol*m
}

// Zero reports whether x is exactly zero. It exists for the places
// where exact equality is the semantics, not an approximation: skipping
// structurally absent sparse entries, guarding a division, or testing
// "has this accumulator ever been written". Spelling the guard
// numeric.Zero(x) instead of x == 0 records that the exactness is
// deliberate.
func Zero(x float64) bool { return x == 0 }

// NonZero reports whether x is exactly nonzero; see Zero.
func NonZero(x float64) bool { return x != 0 }

// Finite reports whether x is neither NaN nor ±Inf. It is the guard the
// simlint nanguard analyzer recognizes: a residual or norm passed
// through Finite is proven safe to feed into a convergence comparison
// (IEEE comparisons against NaN are silently false, so an unguarded
// non-finite residual loops a solver to its iteration cap).
func Finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
