package transform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/volume"
)

func TestIdentityTransform(t *testing.T) {
	r := Identity(geom.V(10, 10, 10))
	p := geom.V(3, -2, 7)
	if got := r.Apply(p); got.Sub(p).MaxAbs() > 1e-12 {
		t.Errorf("identity moved point: %v", got)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	r := Rigid{RX: 0.1, RY: -0.2, RZ: 0.3, TX: 1, TY: 2, TZ: 3}
	p := r.Params()
	r2 := Identity(geom.Vec3{}).WithParams(p)
	if r2.RX != 0.1 || r2.TZ != 3 {
		t.Errorf("WithParams mismatch: %+v", r2)
	}
}

func TestWithParamsPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Identity(geom.Vec3{}).WithParams([]float64{1, 2, 3})
}

func TestMatrixMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		r := Rigid{
			RX: rng.NormFloat64() * 0.3, RY: rng.NormFloat64() * 0.3, RZ: rng.NormFloat64() * 0.3,
			TX: rng.NormFloat64() * 10, TY: rng.NormFloat64() * 10, TZ: rng.NormFloat64() * 10,
			Center: geom.V(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50),
		}
		p := geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		a := r.Apply(p)
		b := r.Matrix().Apply(p)
		if a.Sub(b).MaxAbs() > 1e-9 {
			t.Fatalf("Matrix/Apply mismatch: %v vs %v", a, b)
		}
	}
}

func TestApplyPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := Rigid{RX: 0.4, RY: -0.1, RZ: 0.25, TX: 5, TY: -3, TZ: 2, Center: geom.V(20, 20, 20)}
	for trial := 0; trial < 100; trial++ {
		p := geom.V(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40)
		q := geom.V(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40)
		if math.Abs(r.Apply(p).Dist(r.Apply(q))-p.Dist(q)) > 1e-9 {
			t.Fatal("rigid transform did not preserve distance")
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := Rigid{RX: 0.2, RY: 0.1, RZ: -0.3, TX: 4, TY: 1, TZ: -2, Center: geom.V(10, 10, 10)}
	inv := r.Inverse()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		p := geom.V(rng.Float64()*30, rng.Float64()*30, rng.Float64()*30)
		back := inv.Apply(r.Apply(p))
		if back.Sub(p).MaxAbs() > 1e-9 {
			t.Fatalf("inverse round trip failed: %v -> %v", p, back)
		}
	}
}

func TestCenterInvariantUnderPureRotation(t *testing.T) {
	c := geom.V(12, 8, 5)
	r := Rigid{RX: 0.5, RY: 0.7, RZ: -0.2, Center: c}
	if got := r.Apply(c); got.Sub(c).MaxAbs() > 1e-12 {
		t.Errorf("rotation center moved: %v", got)
	}
}

func TestResampleScalarPureTranslation(t *testing.T) {
	g := volume.NewGrid(12, 6, 6, 1)
	src := volume.NewScalar(g)
	src.Set(4, 3, 3, 50)
	// Move content +2 voxels in x.
	r := Rigid{TX: 2, Center: g.Center()}
	out := ResampleScalar(src, r, g)
	if got := out.At(6, 3, 3); math.Abs(got-50) > 1e-4 {
		t.Errorf("translated value = %v, want 50 at (6,3,3)", got)
	}
	if got := out.At(4, 3, 3); got > 1 {
		t.Errorf("original position should be (near) empty, got %v", got)
	}
}

func TestResampleLabelsPureTranslation(t *testing.T) {
	g := volume.NewGrid(10, 5, 5, 1)
	src := volume.NewLabels(g)
	src.Set(2, 2, 2, volume.LabelTumor)
	r := Rigid{TX: 3, Center: g.Center()}
	out := ResampleLabels(src, r, g)
	if out.At(5, 2, 2) != volume.LabelTumor {
		t.Error("label did not translate")
	}
}

func TestFieldFromRigidMatchesResample(t *testing.T) {
	g := volume.NewGrid(10, 10, 10, 1)
	src := volume.NewScalar(g)
	for k := 0; k < 10; k++ {
		for j := 0; j < 10; j++ {
			for i := 0; i < 10; i++ {
				src.Set(i, j, k, float64(i+2*j+3*k))
			}
		}
	}
	r := Rigid{RZ: 0.1, TX: 1, TY: -0.5, Center: g.Center()}
	byResample := ResampleScalar(src, r, g)
	byField := FieldFromRigid(r, g).WarpScalar(src)
	for k := 2; k < 8; k++ {
		for j := 2; j < 8; j++ {
			for i := 2; i < 8; i++ {
				a := byResample.At(i, j, k)
				b := byField.At(i, j, k)
				if math.Abs(a-b) > 1e-3 {
					t.Fatalf("mismatch at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
			}
		}
	}
}

func TestMaxDisplacement(t *testing.T) {
	g := volume.NewGrid(11, 11, 11, 1)
	r := Rigid{TX: 3, TY: 4, Center: g.Center()}
	// Pure translation displaces every point by exactly 5.
	if got := r.MaxDisplacement(g); math.Abs(got-5) > 1e-9 {
		t.Errorf("MaxDisplacement = %v, want 5", got)
	}
	// Rotation displaces corners more than center.
	rot := Rigid{RZ: 0.1, Center: g.Center()}
	if got := rot.MaxDisplacement(g); got <= 0 {
		t.Errorf("rotation MaxDisplacement = %v, want > 0", got)
	}
}

func TestParamDistance(t *testing.T) {
	a := Rigid{TX: 1}
	b := Rigid{TX: 3}
	if got := ParamDistance(a, b, 100); got != 2 {
		t.Errorf("ParamDistance = %v, want 2", got)
	}
	c := Rigid{RX: 0.01}
	if got := ParamDistance(c, Rigid{}, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("rotation ParamDistance = %v, want 1", got)
	}
}
