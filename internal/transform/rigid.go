// Package transform provides rigid-body transforms and volume
// resampling. The pipeline's first intraoperative step aligns each new
// scan to the preoperative coordinate frame with a 6-degree-of-freedom
// rigid transform (3 rotations, 3 translations) estimated by mutual
// information maximization (package register); this package supplies the
// parameterization and the resampling operators.
package transform

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/volume"
)

// Rigid is a 6-DOF rigid-body transform: rotation by Euler angles
// (RX, RY, RZ radians, applied as Rz*Ry*Rx) about a center point,
// followed by translation (TX, TY, TZ mm).
//
// Rotating about a center (typically the volume center) rather than the
// world origin keeps the rotation and translation parameters well
// conditioned for optimization.
type Rigid struct {
	RX, RY, RZ float64 // Euler angles, radians
	TX, TY, TZ float64 // translation, mm
	Center     geom.Vec3
}

// Identity returns the identity transform about the given center.
func Identity(center geom.Vec3) Rigid {
	return Rigid{Center: center}
}

// Params returns the six free parameters as a slice in the order
// rx, ry, rz, tx, ty, tz.
func (r Rigid) Params() []float64 {
	return []float64{r.RX, r.RY, r.RZ, r.TX, r.TY, r.TZ}
}

// WithParams returns a copy of r with the six free parameters replaced.
// It panics if p does not have length 6.
func (r Rigid) WithParams(p []float64) Rigid {
	if len(p) != 6 {
		panic(fmt.Sprintf("transform: want 6 params, got %d", len(p)))
	}
	r.RX, r.RY, r.RZ = p[0], p[1], p[2]
	r.TX, r.TY, r.TZ = p[3], p[4], p[5]
	return r
}

// Matrix returns the homogeneous matrix of the transform.
func (r Rigid) Matrix() geom.Mat4 {
	rot := geom.EulerZYX(r.RX, r.RY, r.RZ)
	// p' = R(p - c) + c + t
	t := r.Center.Sub(rot.MulVec(r.Center)).Add(geom.V(r.TX, r.TY, r.TZ))
	return geom.FromRT(rot, t)
}

// Apply transforms the point p.
func (r Rigid) Apply(p geom.Vec3) geom.Vec3 {
	rot := geom.EulerZYX(r.RX, r.RY, r.RZ)
	return rot.MulVec(p.Sub(r.Center)).Add(r.Center).Add(geom.V(r.TX, r.TY, r.TZ))
}

// Inverse returns the exact inverse transform, expressed with the same
// center. Note the inverse of an Euler-parameterized rotation is
// returned as a matrix-backed transform; use Matrix() for composition.
func (r Rigid) Inverse() geom.Mat4 {
	m, err := r.Matrix().Inverse()
	if err != nil {
		// A rigid matrix is always invertible; reaching here indicates
		// corrupted parameters (NaN). Return identity to stay total.
		return geom.Identity4()
	}
	return m
}

// String implements fmt.Stringer.
func (r Rigid) String() string {
	return fmt.Sprintf("rot=(%.4f, %.4f, %.4f) rad, trans=(%.2f, %.2f, %.2f) mm",
		r.RX, r.RY, r.RZ, r.TX, r.TY, r.TZ)
}

// MaxDisplacement returns the largest displacement the transform induces
// on the corners of the given grid — a conservative measure of how far
// the transform moves the volume.
func (r Rigid) MaxDisplacement(g volume.Grid) float64 {
	maxD := 0.0
	for _, ci := range []int{0, g.NX - 1} {
		for _, cj := range []int{0, g.NY - 1} {
			for _, ck := range []int{0, g.NZ - 1} {
				p := g.WorldOf(geom.Vox(ci, cj, ck))
				if d := r.Apply(p).Dist(p); d > maxD {
					maxD = d
				}
			}
		}
	}
	return maxD
}

// ResampleScalar resamples src through the inverse of the transform so
// that the output volume (on grid out) shows src as if it had been moved
// by r: out(p) = src(r^{-1}(p)).
func ResampleScalar(src *volume.Scalar, r Rigid, out volume.Grid) *volume.Scalar {
	inv := r.Inverse()
	dst := volume.NewScalar(out)
	for k := 0; k < out.NZ; k++ {
		for j := 0; j < out.NY; j++ {
			for i := 0; i < out.NX; i++ {
				p := out.World(i, j, k)
				dst.Data[out.Index(i, j, k)] = float32(src.SampleWorld(inv.Apply(p)))
			}
		}
	}
	return dst
}

// ResampleLabels nearest-neighbor resamples a label volume through the
// inverse of the transform.
func ResampleLabels(src *volume.Labels, r Rigid, out volume.Grid) *volume.Labels {
	inv := r.Inverse()
	dst := volume.NewLabels(out)
	for k := 0; k < out.NZ; k++ {
		for j := 0; j < out.NY; j++ {
			for i := 0; i < out.NX; i++ {
				p := out.World(i, j, k)
				dst.Data[out.Index(i, j, k)] = src.AtWorld(inv.Apply(p))
			}
		}
	}
	return dst
}

// FieldFromRigid converts a rigid transform into a dense displacement
// field on grid g, with the backward-warp convention used by
// volume.Field: f(p) = r^{-1}(p) - p, so WarpScalar(src) == resampled
// src moved by r.
func FieldFromRigid(r Rigid, g volume.Grid) *volume.Field {
	inv := r.Inverse()
	f := volume.NewField(g)
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				p := g.World(i, j, k)
				f.Set(i, j, k, inv.Apply(p).Sub(p))
			}
		}
	}
	return f
}

// ParamDistance returns a scalar distance between two rigid transforms,
// combining rotation (radians, weighted by lever arm) and translation
// (mm). Used by tests to assert registration accuracy.
func ParamDistance(a, b Rigid, leverArm float64) float64 {
	dr := math.Abs(a.RX-b.RX) + math.Abs(a.RY-b.RY) + math.Abs(a.RZ-b.RZ)
	dt := math.Abs(a.TX-b.TX) + math.Abs(a.TY-b.TY) + math.Abs(a.TZ-b.TZ)
	return dr*leverArm + dt
}
